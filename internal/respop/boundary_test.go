package respop

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/resolver"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// boundaryCounts collects, across every profile, the iteration counts
// sitting exactly at and one above each documented limit — the
// off-by-one pins.
func boundaryCounts() []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	add := func(limit int) {
		for _, c := range []int{limit, limit + 1} {
			if c >= 0 && c <= 0xFFFF && !seen[uint16(c)] {
				seen[uint16(c)] = true
				out = append(out, uint16(c))
			}
		}
	}
	for _, p := range Profiles() {
		if p.Policy.InsecureLimit != resolver.NoLimit {
			add(p.Policy.InsecureLimit)
		}
		if p.Policy.ServfailLimit != resolver.NoLimit {
			add(p.Policy.ServfailLimit)
		}
	}
	return out
}

// buildBoundaryWorld signs one "it<N>.test" NSEC3 zone per boundary
// count, all on one leaf server.
func buildBoundaryWorld(t testing.TB, counts []uint16) *testbed.Hierarchy {
	t.Helper()
	b := testbed.NewBuilder(1709251200, 1717200000)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("test"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3},
		Server: netsim.Addr4(192, 5, 6, 53),
	})
	leaf := netsim.Addr4(203, 0, 113, 77)
	for _, c := range counts {
		b.AddZone(testbed.ZoneSpec{
			Apex:   dnswire.MustParseName(fmt.Sprintf("it%d.test", c)),
			Server: leaf,
			Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: c}},
			Populate: func(z *zone.Zone) {
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.A{Addr: leaf.Addr()}})
			},
		})
	}
	h, err := b.Build(netsim.NewNetwork(9))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// expectedAt replays the documented policy semantics at one count: the
// test is meaningful because it only probes exactly L and L+1, so any
// off-by-one in the resolver's comparisons flips an assertion.
func expectedAt(p resolver.Policy, iters int) (dnswire.RCode, bool, dnswire.EDECode) {
	if p.ServfailLimit != resolver.NoLimit && iters > p.ServfailLimit {
		return dnswire.RCodeServFail, false, p.EDE
	}
	if p.InsecureLimit != resolver.NoLimit && iters > p.InsecureLimit {
		return dnswire.RCodeNXDomain, false, p.EDE
	}
	return dnswire.RCodeNXDomain, !p.NoNegativeAD, 0
}

// TestProfileLimitBoundaries drives every limited vendor profile
// against zones at exactly its InsecureLimit/ServfailLimit and one
// above: validation must hold at the limit and flip one past it, with
// the profile's EDE appearing only on the limit-decided side.
func TestProfileLimitBoundaries(t *testing.T) {
	counts := boundaryCounts()
	h := buildBoundaryWorld(t, counts)
	for _, prof := range Profiles() {
		p := prof.Policy
		if !p.Validate || (p.InsecureLimit == resolver.NoLimit && p.ServfailLimit == resolver.NoLimit) {
			continue
		}
		var probes []int
		if p.InsecureLimit != resolver.NoLimit {
			probes = append(probes, p.InsecureLimit, p.InsecureLimit+1)
		}
		if p.ServfailLimit != resolver.NoLimit {
			probes = append(probes, p.ServfailLimit, p.ServfailLimit+1)
		}
		r := resolver.New(resolver.Config{
			Roots:       h.Roots,
			TrustAnchor: h.TrustAnchor,
			Exchanger:   h.Net,
			Policy:      p,
			Now:         func() uint32 { return 1712000000 },
		})
		for _, it := range probes {
			qname := dnswire.MustParseName(fmt.Sprintf("gone.www.it%d.test", it))
			res, err := r.Resolve(context.Background(), qname, dnswire.TypeA)
			if err != nil {
				t.Fatalf("%s at %d iterations: %v", p.Name, it, err)
			}
			wantRC, wantAD, wantEDE := expectedAt(p, it)
			if res.RCode != wantRC || res.AD != wantAD {
				t.Errorf("%s at %d iterations: rcode=%s ad=%v, want %s/%v",
					p.Name, it, res.RCode, res.AD, wantRC, wantAD)
			}
			var gotEDE dnswire.EDECode
			if len(res.EDE) > 0 {
				gotEDE = res.EDE[0].Code
			}
			if gotEDE != wantEDE {
				t.Errorf("%s at %d iterations: EDE=%d, want %d", p.Name, it, gotEDE, wantEDE)
			}
			// Technitium's EXTRA-TEXT rides along whenever its EDE does.
			if wantEDE != 0 && p.EDEText != "" && (len(res.EDE) == 0 || res.EDE[0].Text != p.EDEText) {
				t.Errorf("%s at %d iterations: missing EXTRA-TEXT %q", p.Name, it, p.EDEText)
			}
		}
	}
}

// TestProfileEDEMatchesNote cross-checks each profile's machine policy
// against its human documentation: a Note claiming "no EDE" (or
// predating EDE) must pair with EDE 0, a Note naming an EDE code with a
// nonzero one.
func TestProfileEDEMatchesNote(t *testing.T) {
	for _, p := range Profiles() {
		note := strings.ToLower(p.Note)
		saysNone := strings.Contains(note, "no ede") || strings.Contains(note, "predates ede")
		saysSome := !saysNone && strings.Contains(note, "ede")
		if saysNone && p.Policy.EDE != 0 {
			t.Errorf("%s: note says no EDE but policy attaches %d", p.Policy.Name, uint16(p.Policy.EDE))
		}
		if saysSome && p.Policy.EDE == 0 {
			t.Errorf("%s: note documents an EDE but policy attaches none", p.Policy.Name)
		}
	}
}
