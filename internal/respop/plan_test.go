package respop

import (
	"errors"
	"testing"
)

func testPlanner(t *testing.T, counts map[Quadrant]int, seed uint64) *Planner {
	t.Helper()
	p, err := NewPlanner(DeployConfig{
		Counts: counts, Seed: seed,
		Now: func() uint32 { return 1712000000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlannerIndexPurity is the contract the streaming study rests on:
// assignment i depends only on (Seed, Counts, i) — never on shard
// decomposition or the order assignments are derived in.
func TestPlannerIndexPurity(t *testing.T) {
	counts := map[Quadrant]int{OpenIPv4: 97, OpenIPv6: 13, ClosedIPv4: 7, ClosedIPv6: 5}
	p := testPlanner(t, counts, 42)

	// Reference: every assignment from a single sweep.
	ref := make([]Assignment, p.Total())
	for i := range ref {
		a, err := p.At(i)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = a
	}

	// A fresh planner with the same config reproduces it exactly,
	// even when walked via cursors over different shard decompositions.
	for _, shards := range []int{1, 2, 3, 7, p.Total()} {
		q := testPlanner(t, counts, 42)
		i := 0
		for _, plan := range q.Plan(shards) {
			cur, err := q.Cursor(plan)
			if err != nil {
				t.Fatal(err)
			}
			for {
				a, ok := cur.Next()
				if !ok {
					break
				}
				if a != ref[i] {
					t.Fatalf("shards=%d index %d: got %+v, want %+v", shards, i, a, ref[i])
				}
				i++
			}
		}
		if i != p.Total() {
			t.Fatalf("shards=%d visited %d of %d", shards, i, p.Total())
		}
	}

	// A different seed permutes profiles differently.
	q := testPlanner(t, counts, 43)
	same := 0
	for i := range ref {
		a, err := q.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if a.Profile.Policy.Name == ref[i].Profile.Policy.Name {
			same++
		}
	}
	if same == p.Total() {
		t.Fatal("seed change did not move any profile")
	}
}

// TestPlannerExactCounts checks the permutation is a bijection: the
// per-profile counts reached through At equal the largest-remainder
// allocation exactly, and every address is unique and quadrant-typed.
func TestPlannerExactCounts(t *testing.T) {
	counts := map[Quadrant]int{OpenIPv4: 211, OpenIPv6: 53, ClosedIPv4: 17, ClosedIPv6: 3}
	p := testPlanner(t, counts, 9)
	got := map[Quadrant]map[string]int{}
	addrs := map[string]bool{}
	for i := 0; i < p.Total(); i++ {
		a, err := p.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if got[a.Quadrant] == nil {
			got[a.Quadrant] = map[string]int{}
		}
		got[a.Quadrant][a.Profile.Policy.Name]++
		key := a.Addr.String()
		if addrs[key] {
			t.Fatalf("duplicate address %s at index %d", key, i)
		}
		addrs[key] = true
		is6 := a.Addr.Addr().Is6()
		want6 := a.Quadrant == OpenIPv6 || a.Quadrant == ClosedIPv6
		if is6 != want6 {
			t.Fatalf("index %d: IPv6=%v for quadrant %s", i, is6, a.Quadrant)
		}
	}
	for _, q := range Quadrants() {
		mix := Mix(q)
		want := allocateCounts(mix, counts[q])
		for i, s := range mix {
			if got[q][s.Profile.Policy.Name] != want[i] {
				t.Errorf("%s/%s: %d via At, want %d via allocation",
					q, s.Profile.Policy.Name, got[q][s.Profile.Policy.Name], want[i])
			}
		}
	}
}

func TestPlanDecomposition(t *testing.T) {
	p := testPlanner(t, map[Quadrant]int{OpenIPv4: 10}, 1)
	for _, shards := range []int{0, 1, 3, 10, 99} {
		plans := p.Plan(shards)
		offset := 0
		for i, pl := range plans {
			if pl.Index != i || pl.Offset != offset || pl.Size < 1 {
				t.Fatalf("shards=%d: bad plan %+v at %d", shards, pl, i)
			}
			offset += pl.Size
		}
		if offset != p.Total() {
			t.Fatalf("shards=%d: plans cover %d of %d", shards, offset, p.Total())
		}
	}
	// Out-of-range plans are rejected.
	if _, err := p.Cursor(ShardPlan{Offset: 5, Size: 6}); err == nil {
		t.Fatal("oversized shard plan accepted")
	}
	if _, err := p.At(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := p.At(10); err == nil {
		t.Fatal("past-end index accepted")
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  DeployConfig
	}{
		{"negative", DeployConfig{Counts: map[Quadrant]int{OpenIPv4: -1}}},
		{"unknown quadrant", DeployConfig{Counts: map[Quadrant]int{Quadrant(9): 3}}},
		{"empty", DeployConfig{}},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want *ConfigError, got %v", c.name, err)
		}
	}
	ok := DeployConfig{Counts: map[Quadrant]int{ClosedIPv6: 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPopulationCounts(t *testing.T) {
	full := PopulationCounts(1)
	if full[OpenIPv4]+full[OpenIPv6] != FullOpenResolvers {
		t.Errorf("open population %d+%d != %d", full[OpenIPv4], full[OpenIPv6], FullOpenResolvers)
	}
	if full[ClosedIPv4]+full[ClosedIPv6] != FullClosedResolvers {
		t.Errorf("closed population %d+%d != %d", full[ClosedIPv4], full[ClosedIPv6], FullClosedResolvers)
	}
	// Population dwarfs the deployed validator fleet in each quadrant.
	deployed := DefaultCounts(1)
	for _, q := range Quadrants() {
		if full[q] <= deployed[q] {
			t.Errorf("%s: population %d not above validators %d", q, full[q], deployed[q])
		}
	}
}

func TestFeistelBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 17, 1000} {
		f := newFeistel(n, 77)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			j := f.apply(uint64(i))
			if j >= uint64(n) {
				t.Fatalf("n=%d: apply(%d)=%d out of range", n, i, j)
			}
			if seen[j] {
				t.Fatalf("n=%d: collision at %d", n, j)
			}
			seen[j] = true
		}
	}
}
