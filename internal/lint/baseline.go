package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A baseline is the suite's ratchet: a committed list of findings the
// project tolerates for now. Runs drop diagnostics matched by the
// baseline and fail on everything else, so the finding count can only
// go down — fixing an entry means deleting its line, and a new finding
// can never hide behind an old one. Entries match by analyzer, file
// path suffix, and exact message (never by line number: a baseline
// that rots on every unrelated edit gets regenerated instead of
// fixed).

// BaselineEntry is one tolerated finding.
type BaselineEntry struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is a path suffix of the finding's file.
	File string `json:"file"`
	// Message is the exact diagnostic message.
	Message string `json:"message"`
	// Reason says why the finding is tolerated rather than fixed.
	Reason string `json:"reason,omitempty"`
}

// Baseline is the committed set of tolerated findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, so a fresh checkout ratchets from zero.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the baseline as stable, diff-friendly JSON.
func WriteBaseline(path string, b *Baseline) error {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FromDiagnostics builds a baseline tolerating diags, with file paths
// made repo-relative so the file is stable across checkouts.
func FromDiagnostics(diags []Diagnostic, reason string) *Baseline {
	b := &Baseline{}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename),
			Message:  d.Message,
			Reason:   reason,
		})
	}
	return b
}

// relPath renders p relative to the working directory when possible.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return filepath.ToSlash(rel)
}

// matches reports whether the entry tolerates d.
func (e BaselineEntry) matches(d Diagnostic) bool {
	return e.Analyzer == d.Analyzer &&
		e.Message == d.Message &&
		pathSuffixMatch(filepath.ToSlash(d.Pos.Filename), e.File)
}

// Apply splits diags into new findings (not tolerated) and the entries
// that matched nothing — stale lines whose finding has been fixed and
// should be deleted from the file.
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	used := make([]bool, len(b.Entries))
	for _, d := range diags {
		matched := false
		for i, e := range b.Entries {
			if e.matches(d) {
				used[i] = true
				matched = true
			}
		}
		if !matched {
			fresh = append(fresh, d)
		}
	}
	for i, e := range b.Entries {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
