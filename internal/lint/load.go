package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader turns `go list` package metadata into type-checked
// *Package values without golang.org/x/tools. The trick that keeps it
// stdlib-only: `go list -export` materializes gc export data for every
// dependency (including the standard library, whose .a files no longer
// ship in GOROOT since Go 1.20) in the build cache, and
// importer.ForCompiler's lookup hook lets us feed those files to the
// type checker. Packages matched by the patterns are parsed and checked
// from source so analyzers get full syntax trees; their imports resolve
// through export data, which keeps the load order trivial.

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` in dir for the patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from gc export data files, falling
// back to nothing: every dependency of a listed package is itself
// listed by -deps, so the table is complete.
type exportImporter struct {
	base    types.Importer
	exports map[string]string // import path -> export data file
	cache   map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports, cache: make(map[string]*types.Package)}
	imp.base = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp
}

// Import implements types.Importer.
func (imp *exportImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.cache[path]; ok {
		return pkg, nil
	}
	pkg, err := imp.base.Import(path)
	if err != nil {
		return nil, err
	}
	imp.cache[path] = pkg
	return pkg, nil
}

// newInfo allocates the fact tables analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load lists, parses, and type-checks the packages matched by patterns,
// resolved relative to dir ("" for the current directory). Test files
// are not analyzed: the suite guards the shipped pipeline, and tests
// legitimately use fixed wall-clock stand-ins and map-order-insensitive
// assertions.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  p.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// StdImporter returns an importer able to resolve the named standard
// library packages (and their transitive dependencies) from build-cache
// export data. The golden-file tests use it to type-check testdata.
func StdImporter(fset *token.FileSet, pkgs ...string) (types.Importer, error) {
	listed, err := goList("", pkgs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return newExportImporter(fset, exports), nil
}
