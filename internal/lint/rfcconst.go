package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// RFCConstAnalyzer flags integer literals used where a named DNS
// protocol constant exists: RR types, classes, rcodes, DNSSEC
// algorithms, digest types, and the NSEC3 hash algorithm. A bare 50
// where TypeNSEC3 is meant is unreviewable and fails silently when a
// registry assignment is misremembered; the reproduction's compliance
// tables (RFC 9276 guidance) are only as trustworthy as these numbers.
//
// The literal's *declared type* triggers the check: an untyped 50 used
// as an int is fine, but a 50 converted to or compared against
// dnswire.Type must be written TypeNSEC3. The two registry files that
// define the constants are exempt, as are const declarations (defining
// new protocol constants from numbers is the registry's job).
var RFCConstAnalyzer = &Analyzer{
	Name: "rfcconst",
	Doc: "flag magic numbers typed as DNS registry enums (RR types, " +
		"classes, rcodes, algorithms) outside the registry files",
	ExemptFiles: []string{
		"internal/dnswire/types.go",
		"internal/compliance/guidelines.go",
	},
	Run: runRFCConst,
}

// rfcEnums maps the dnswire enum type names to value→constant tables
// used for suggestion text. Values missing from a table still get
// flagged — the point is the named type, not the table.
var rfcEnums = map[string]map[int64]string{
	"Type": {
		1: "TypeA", 2: "TypeNS", 5: "TypeCNAME", 6: "TypeSOA", 12: "TypePTR",
		15: "TypeMX", 16: "TypeTXT", 28: "TypeAAAA", 41: "TypeOPT", 43: "TypeDS",
		46: "TypeRRSIG", 47: "TypeNSEC", 48: "TypeDNSKEY", 50: "TypeNSEC3",
		51: "TypeNSEC3PARAM", 252: "TypeAXFR", 255: "TypeANY",
	},
	"Class": {1: "ClassIN", 254: "ClassNone", 255: "ClassANY"},
	"RCode": {
		0: "RCodeNoError", 1: "RCodeFormErr", 2: "RCodeServFail",
		3: "RCodeNXDomain", 4: "RCodeNotImp", 5: "RCodeRefused",
	},
	"Opcode":       {0: "OpcodeQuery"},
	"SecAlgorithm": {8: "AlgRSASHA256", 13: "AlgECDSAP256SHA256", 15: "AlgEd25519"},
	"DigestType":   {1: "DigestSHA1", 2: "DigestSHA256", 4: "DigestSHA384"},
	"NSEC3HashAlg": {1: "NSEC3HashSHA1"},
}

func runRFCConst(pass *Pass) {
	for _, f := range pass.Files {
		// Collect literals inside const declarations: the registry idiom
		// (and iota arithmetic) is exempt wherever it appears.
		inConst := map[*ast.BasicLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "const" {
				return true
			}
			ast.Inspect(gd, func(m ast.Node) bool {
				if lit, ok := m.(*ast.BasicLit); ok {
					inConst[lit] = true
				}
				return true
			})
			return false
		})
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || inConst[lit] {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return true
			}
			enum := dnswireEnumName(tv.Type)
			if enum == "" {
				return true
			}
			v, exact := constant.Int64Val(tv.Value)
			if !exact || v == 0 {
				return true // zero values (RCodeNoError, no flags) read fine bare
			}
			if name, ok := rfcEnums[enum][v]; ok {
				pass.Reportf(lit.Pos(), "magic number %s used as dnswire.%s; write the named constant %s", lit.Value, enum, name)
			} else {
				pass.Reportf(lit.Pos(), "magic number %s used as dnswire.%s; define and use a named constant in internal/dnswire/types.go", lit.Value, enum)
			}
			return true
		})
	}
}

// dnswireEnumName returns the enum's type name when t is one of the
// dnswire registry types, else "".
func dnswireEnumName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathSuffixMatch(obj.Pkg().Path(), "internal/dnswire") {
		return ""
	}
	if _, ok := rfcEnums[obj.Name()]; ok {
		return obj.Name()
	}
	return ""
}
