package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer forbids nondeterminism sources in the synthetic
// population and analysis layers. The paper's Table 2 / Figure 1
// calibration is reproducible only if generation and aggregation are
// pure functions of the configured seed, so inside the scoped packages
// the analyzer reports:
//
//   - calls to time.Now / time.Since / time.Until (wall clock);
//   - calls to package-level math/rand and math/rand/v2 functions,
//     which draw from the global, non-seeded source (constructors like
//     rand.New and rand.NewPCG are allowed — seeded streams are the
//     sanctioned way to sample);
//   - output that depends on map iteration order: inside a
//     range-over-map, writing directly to an output sink or appending
//     to a slice that is not sorted afterwards in the same block.
//
// internal/obs is in scope because its rendered /metrics output and
// merged counters must not depend on map order or ambient entropy.
// Functions carrying a //repro:nondeterministic directive (with a
// reason) are skipped: they are sanctioned nondeterminism roots, the
// detertaint analyzer polices the annotations themselves and keeps
// every caller of an unannotated source honest across package
// boundaries.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global rand-source draws, and " +
		"map-iteration-order-dependent output in the deterministic " +
		"population/analysis layers",
	Packages:   []string{"internal/population", "internal/respop", "internal/analysis", "internal/obs"},
	ExtraFiles: []string{"internal/core/timeline.go"},
	Run:        runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if reason := parseDirectives(fd.Doc)[NondetDirective]; reason != "" {
					continue // sanctioned root; detertaint audits the directive
				}
			}
			checkDeclDeterminism(pass, decl)
		}
	}
}

// checkDeclDeterminism applies both determinism rules to one top-level
// declaration.
func checkDeclDeterminism(pass *Pass, decl ast.Decl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // methods (e.g. on a seeded *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "call to time.%s leaks the wall clock into a deterministic layer; thread an explicit clock through the config", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(), "call to %s.%s draws from the global rand source; use a seeded *rand.Rand (rand.New(rand.NewPCG(seed, ...)))", fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
	forEachStmtList(decl, func(list []ast.Stmt) {
		for i, stmt := range list {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			if t := pass.Info.TypeOf(rs.X); t == nil {
				continue
			} else if _, ok := t.Underlying().(*types.Map); !ok {
				continue
			}
			checkMapRange(pass, rs, list[i+1:])
		}
	})
}

// forEachStmtList visits every statement list under root (block
// bodies, case clauses, comm clauses), giving callers successor
// visibility within a list.
func forEachStmtList(root ast.Node, fn func([]ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// checkMapRange inspects one range-over-map body. Direct writes to an
// output sink are always order-dependent; appends are order-dependent
// unless the target slice is sorted after the loop in the same
// statement list. Pure accumulation (sums, building other maps/sets)
// is order-insensitive and allowed, as are appends to variables
// declared inside the loop body: a per-iteration local is rebuilt from
// scratch each pass, so map order cannot leak through it.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	type appendSite struct {
		pos    ast.Node
		target string
	}
	var appends []appendSite
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOutputCall(pass.Info, n) {
				pass.Reportf(n.Pos(), "output written inside range over map %s depends on map iteration order; collect and sort first", exprString(rs.X))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || len(n.Lhs) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				return true
			} else if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if declaredWithin(pass.Info, n.Lhs[0], rs) {
				return true
			}
			appends = append(appends, appendSite{pos: n, target: exprString(n.Lhs[0])})
		}
		return true
	})
	for _, a := range appends {
		if !sortedAfter(pass, a.target, tail) {
			pass.Reportf(a.pos.Pos(), "append to %s inside range over map %s depends on map iteration order; sort %s afterwards (or range over sorted keys)", a.target, exprString(rs.X), a.target)
		}
	}
}

// declaredWithin reports whether the root variable of expr (the base
// identifier under any selectors, indexes, or dereferences) is declared
// inside the range statement's extent.
func declaredWithin(info *types.Info, expr ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := info.ObjectOf(e)
			return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
		default:
			return false
		}
	}
}

// isOutputCall reports whether the call writes to an output sink:
// a fmt print function or a Write*/print method on any receiver.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// sortedAfter reports whether some statement in tail calls a sort or
// slices package function with target as an argument.
func sortedAfter(pass *Pass, target string, tail []ast.Stmt) bool {
	for _, stmt := range tail {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if exprString(arg) == target {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
