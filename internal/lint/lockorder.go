package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderAnalyzer enforces intra-type lock discipline for the
// mutex-guarded types the pipeline grew in PRs 2–3 (scanner limiter
// and rng, obs registry, netsim host table, resolver caches). Go's
// sync.Mutex is not reentrant, so the classic refactoring accident —
// a method takes its receiver's lock and then calls a sibling method
// that takes the same lock — deadlocks the first time the path runs,
// and only the path that runs it knows. Two shapes are reported:
//
//   - self-deadlock: while holding recv.mu (Lock, or RLock for the
//     write-acquire case), the method calls another method of the same
//     receiver that can — transitively, through same-receiver calls —
//     acquire recv.mu again;
//
//   - defer-less early return: a method Locks recv.mu without
//     deferring the Unlock and reaches a return before any Unlock on
//     that path, leaving the type locked forever.
//
// The path analysis is deliberately forgiving: an Unlock anywhere
// inside a branch releases the tracked lock for the code after it, so
// the guard-clause idiom (`if done { mu.Unlock(); return }`) stays
// silent. The analyzer under-reports rather than flagging idioms.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "flag same-receiver mutex self-deadlocks (lock held across a " +
		"call that re-acquires it) and early returns while holding a " +
		"defer-less lock",
	RunProject: runLockOrder,
}

// lockKind distinguishes write from read acquisition.
type lockKind int

const (
	lockWrite lockKind = iota // Lock
	lockRead                  // RLock
)

// acquireSet maps a receiver-lock path ("mu", "idMu") to the kinds a
// method may acquire it with.
type acquireSet map[string]map[lockKind]bool

func (s acquireSet) add(path string, k lockKind) bool {
	if s[path] == nil {
		s[path] = map[lockKind]bool{}
	}
	if s[path][k] {
		return false
	}
	s[path][k] = true
	return true
}

// methodInfo is the per-method lock summary.
type methodInfo struct {
	node *CallNode
	// recv is the receiver identifier object, used to root lock paths.
	recv *types.Var
	// acquires is the transitive may-acquire set.
	acquires acquireSet
	// calls are same-receiver sibling calls: callee method -> sites.
	calls map[*types.Func][]ast.Node
}

func runLockOrder(pass *ProjectPass) {
	// Group methods by their receiver's named type.
	byType := map[*types.TypeName][]*methodInfo{}
	var typeOrder []*types.TypeName
	for _, node := range pass.Project.Graph.Nodes {
		if node.Func == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		sig := node.Func.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		tn := receiverTypeName(sig.Recv().Type())
		if tn == nil {
			continue
		}
		mi := summarizeMethod(node)
		if mi == nil {
			continue
		}
		if byType[tn] == nil {
			typeOrder = append(typeOrder, tn)
		}
		byType[tn] = append(byType[tn], mi)
	}

	for _, tn := range typeOrder {
		methods := byType[tn]
		propagateAcquires(methods)
		byFunc := map[*types.Func]*methodInfo{}
		for _, mi := range methods {
			byFunc[mi.node.Func] = mi
		}
		for _, mi := range methods {
			checkMethodPaths(pass, mi, byFunc)
		}
	}
}

// receiverTypeName resolves the named type behind a method receiver.
func receiverTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// summarizeMethod records a method's direct lock acquisitions and its
// same-receiver sibling calls. Function literals inside the body are
// excluded: they may run on another goroutine, where re-acquisition is
// contention, not deadlock.
func summarizeMethod(node *CallNode) *methodInfo {
	recvField := node.Decl.Recv.List[0]
	if len(recvField.Names) == 0 {
		return nil // anonymous receiver: no lock paths can root on it
	}
	recv, _ := node.Pkg.Info.Defs[recvField.Names[0]].(*types.Var)
	if recv == nil {
		return nil
	}
	mi := &methodInfo{
		node:     node,
		recv:     recv,
		acquires: acquireSet{},
		calls:    map[*types.Func][]ast.Node{},
	}
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, kind, op := receiverLockOp(info, recv, call); op && kind != lockOpUnlock && kind != lockOpRUnlock {
			if kind == lockOpLock {
				mi.acquires.add(path, lockWrite)
			} else {
				mi.acquires.add(path, lockRead)
			}
			return true
		}
		if fn := siblingCall(info, recv, call); fn != nil {
			mi.calls[fn] = append(mi.calls[fn], call)
		}
		return true
	})
	return mi
}

// lockOp identifies the four sync lock method names.
type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpLock
	lockOpRLock
	lockOpUnlock
	lockOpRUnlock
)

// receiverLockOp matches calls of the form recv.path.Lock() (or
// RLock/Unlock/RUnlock) where path is a selector chain rooted at the
// method receiver and the callee is sync.Mutex or sync.RWMutex.
func receiverLockOp(info *types.Info, recv *types.Var, call *ast.CallExpr) (path string, op lockOp, ok bool) {
	sel, selOk := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", lockOpNone, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockOpNone, false
	}
	switch fn.Name() {
	case "Lock":
		op = lockOpLock
	case "RLock":
		op = lockOpRLock
	case "Unlock":
		op = lockOpUnlock
	case "RUnlock":
		op = lockOpRUnlock
	default:
		return "", lockOpNone, false
	}
	path, rooted := receiverPath(info, recv, sel.X)
	if !rooted {
		return "", lockOpNone, false
	}
	return path, op, true
}

// receiverPath renders a selector chain ("mu", "inner.mu") if it is
// rooted at the method receiver; ok is false otherwise.
func receiverPath(info *types.Info, recv *types.Var, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return "", info.ObjectOf(e) == recv
	case *ast.SelectorExpr:
		prefix, ok := receiverPath(info, recv, e.X)
		if !ok {
			return "", false
		}
		if prefix == "" {
			return e.Sel.Name, true
		}
		return prefix + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return receiverPath(info, recv, e.X)
	}
	return "", false
}

// siblingCall resolves recv.Method(...) calls to the callee, nil for
// anything else.
func siblingCall(info *types.Info, recv *types.Var, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if path, rooted := receiverPath(info, recv, sel.X); !rooted || path != "" {
		return nil // not a direct method on the receiver itself
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil
	}
	return fn
}

// propagateAcquires closes each method's acquire set over
// same-receiver calls (fixpoint; the graphs are tiny).
func propagateAcquires(methods []*methodInfo) {
	byFunc := map[*types.Func]*methodInfo{}
	for _, mi := range methods {
		byFunc[mi.node.Func] = mi
	}
	for changed := true; changed; {
		changed = false
		for _, mi := range methods {
			for callee := range mi.calls {
				cmi := byFunc[callee]
				if cmi == nil {
					continue
				}
				for path, kinds := range cmi.acquires {
					for k := range kinds {
						if mi.acquires.add(path, k) {
							changed = true
						}
					}
				}
			}
		}
	}
}

// heldLock is the tracked state of one receiver lock.
type heldLock struct {
	kind     lockKind
	deferred bool // a defer recv.path.Unlock() covers returns
	pos      token.Pos
}

// checkMethodPaths walks one method's statements tracking which
// receiver locks are held, reporting re-acquiring sibling calls and
// defer-less early returns.
func checkMethodPaths(pass *ProjectPass, mi *methodInfo, byFunc map[*types.Func]*methodInfo) {
	held := map[string]*heldLock{}
	walkHeldStmts(pass, mi, byFunc, mi.node.Decl.Body.List, held)
}

// cloneHeld copies the held map for branch-local tracking.
func cloneHeld(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		c := *v
		out[k] = &c
	}
	return out
}

// walkHeldStmts processes a statement list sequentially.
func walkHeldStmts(pass *ProjectPass, mi *methodInfo, byFunc map[*types.Func]*methodInfo, stmts []ast.Stmt, held map[string]*heldLock) {
	info := mi.node.Pkg.Info
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if path, op, ok := receiverLockOp(info, mi.recv, call); ok {
					switch op {
					case lockOpLock:
						held[path] = &heldLock{kind: lockWrite, pos: call.Pos()}
					case lockOpRLock:
						held[path] = &heldLock{kind: lockRead, pos: call.Pos()}
					case lockOpUnlock, lockOpRUnlock:
						delete(held, path)
					}
					continue
				}
			}
			checkExprLocks(pass, mi, byFunc, s.X, held)
		case *ast.DeferStmt:
			if path, op, ok := receiverLockOp(info, mi.recv, s.Call); ok && (op == lockOpUnlock || op == lockOpRUnlock) {
				if h := held[path]; h != nil {
					h.deferred = true
				}
				continue
			}
			checkExprLocks(pass, mi, byFunc, s.Call, held)
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				checkExprLocks(pass, mi, byFunc, e, held)
			}
			reportEarlyReturns(pass, mi, s, held)
		case *ast.IfStmt:
			if s.Init != nil {
				walkHeldStmts(pass, mi, byFunc, []ast.Stmt{s.Init}, held)
			}
			checkExprLocks(pass, mi, byFunc, s.Cond, held)
			walkHeldStmts(pass, mi, byFunc, s.Body.List, cloneHeld(held))
			if s.Else != nil {
				walkHeldStmts(pass, mi, byFunc, []ast.Stmt{s.Else}, cloneHeld(held))
			}
			releaseBranchUnlocks(info, mi.recv, s, held)
		case *ast.BlockStmt:
			walkHeldStmts(pass, mi, byFunc, s.List, held)
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
			inner := branchBody(s)
			walkHeldStmts(pass, mi, byFunc, inner, cloneHeld(held))
			releaseBranchUnlocks(info, mi.recv, s, held)
		default:
			checkStmtLocks(pass, mi, byFunc, stmt, held)
		}
	}
}

// branchBody flattens the statement lists nested under a branching
// statement so the walk can recurse uniformly.
func branchBody(s ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			out = append(out, n.List...)
			return false
		case *ast.CaseClause:
			out = append(out, n.Body...)
			return false
		case *ast.CommClause:
			out = append(out, n.Body...)
			return false
		}
		return true
	})
	return out
}

// releaseBranchUnlocks drops tracked locks that some branch of s
// unlocks: after the branch the lock may or may not be held, and the
// analyzer prefers silence to guessing.
func releaseBranchUnlocks(info *types.Info, recv *types.Var, s ast.Stmt, held map[string]*heldLock) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, op, ok := receiverLockOp(info, recv, call); ok && (op == lockOpUnlock || op == lockOpRUnlock) {
			delete(held, path)
		}
		return true
	})
}

// reportEarlyReturns flags returns reached while a defer-less lock is
// held.
func reportEarlyReturns(pass *ProjectPass, mi *methodInfo, ret *ast.ReturnStmt, held map[string]*heldLock) {
	paths := make([]string, 0, len(held))
	for path, h := range held {
		if !h.deferred {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		pass.Reportf(mi.node.Pkg.Fset, ret.Pos(),
			"return while holding %s.%s with no deferred Unlock; unlock before returning or `defer %s.%s.Unlock()` at the Lock site",
			mi.recv.Name(), path, mi.recv.Name(), path)
	}
}

// checkStmtLocks scans a statement's expressions for sibling calls
// while locks are held (assignments, sends, declarations...).
func checkStmtLocks(pass *ProjectPass, mi *methodInfo, byFunc map[*types.Func]*methodInfo, stmt ast.Stmt, held map[string]*heldLock) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			checkExprLocks(pass, mi, byFunc, e, held)
			return false
		}
		return true
	})
}

// checkExprLocks reports sibling calls inside e that can re-acquire a
// lock currently held.
func checkExprLocks(pass *ProjectPass, mi *methodInfo, byFunc map[*types.Func]*methodInfo, e ast.Expr, held map[string]*heldLock) {
	if e == nil || len(held) == 0 {
		return
	}
	info := mi.node.Pkg.Info
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := siblingCall(info, mi.recv, call)
		if fn == nil {
			return true
		}
		cmi := byFunc[fn]
		if cmi == nil {
			return true
		}
		paths := make([]string, 0, len(held))
		for path := range held {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			kinds := cmi.acquires[path]
			if kinds == nil {
				continue
			}
			h := held[path]
			// Re-acquiring Lock deadlocks under any held kind; RLock
			// deadlocks only against a held write lock (and RLock-
			// after-RLock is legal, if inadvisable).
			if kinds[lockWrite] || (h.kind == lockWrite && kinds[lockRead]) {
				pass.Reportf(mi.node.Pkg.Fset, call.Pos(),
					"calling %s while holding %s.%s self-deadlocks: it acquires %s.%s again (lock taken at line %d)",
					fn.Name(), mi.recv.Name(), path, mi.recv.Name(), path,
					mi.node.Pkg.Fset.Position(h.pos).Line)
			}
		}
		return true
	})
}
