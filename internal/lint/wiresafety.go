package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WireSafetyAnalyzer flags indexing and slicing of []byte wire buffers
// that is not dominated by a bounds guard. The DNS wire codec and the
// NSEC3 hash layer parse attacker-controlled bytes; a single unguarded
// read is a remote panic at measurement scale, exactly the parser
// robustness class the NSEC3 CPU-exhaustion literature exploits.
//
// An index b[i] or slice b[i:j] of a []byte value is accepted when one
// of these holds (the bounds-check idiom this codebase uses):
//
//   - a dominating if/for condition mentions len(b) — either guarding
//     the access inside its body, or an early-exit guard (a body ending
//     in return/break/continue/panic) earlier in the same block;
//   - b is a field x.f and a dominating condition compares other
//     cursor fields of the same receiver x (the decoder's
//     "d.off+n > d.end" idiom, where d.end is pinned to len(d.msg));
//   - the bound is derived from len(b) in a visible assignment
//     (lenOff := len(e.buf); e.buf[lenOff] = ...), or mentions len(b)
//     directly;
//   - the access is inside a "for ... range b" loop over b itself;
//   - every explicit slice bound is the constant 0 (b[:0] resets).
//
// Constant indexes such as b[0] are deliberately NOT accepted without a
// guard: on truncated input they are exactly the panics fuzzing finds.
// Arrays and strings are out of scope (fixed-size or guarded by the
// string iteration idiom); only []byte — the wire buffer type — is
// checked.
var WireSafetyAnalyzer = &Analyzer{
	Name: "wiresafety",
	Doc: "flag indexing/slicing of []byte wire buffers not dominated " +
		"by a len() bounds guard in the wire codec packages",
	Packages: []string{"internal/dnswire", "internal/nsec3"},
	Run:      runWireSafety,
}

func runWireSafety(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &wireWalker{pass: pass}
			w.walkBlock(fd.Body.List, newGuardEnv())
		}
	}
}

// guardEnv is the set of bounds facts established by the statements
// dominating the current program point.
type guardEnv struct {
	// guarded holds base-expression keys ("msg", "d.msg") and receiver
	// keys ("recv:d") for which a dominating condition established a
	// bound.
	guarded map[string]bool
	// lenDerived maps a base expression to the set of local variable
	// names assigned from an expression involving len(base).
	lenDerived map[string]map[string]bool
}

func newGuardEnv() *guardEnv {
	return &guardEnv{guarded: map[string]bool{}, lenDerived: map[string]map[string]bool{}}
}

func (e *guardEnv) clone() *guardEnv {
	c := newGuardEnv()
	for k := range e.guarded {
		c.guarded[k] = true
	}
	for base, vars := range e.lenDerived {
		m := map[string]bool{}
		for v := range vars {
			m[v] = true
		}
		c.lenDerived[base] = m
	}
	return c
}

func (e *guardEnv) addGuards(keys []string) {
	for _, k := range keys {
		e.guarded[k] = true
	}
}

func (e *guardEnv) markDerived(base, name string) {
	if e.lenDerived[base] == nil {
		e.lenDerived[base] = map[string]bool{}
	}
	e.lenDerived[base][name] = true
}

type wireWalker struct {
	pass *Pass
}

// walkBlock processes a statement list in order. Guards established by
// early-exit if statements extend to the remainder of the list, which
// is how the codec's "if off >= len(msg) { return err }" idiom
// dominates the reads below it.
func (w *wireWalker) walkBlock(stmts []ast.Stmt, env *guardEnv) {
	for _, s := range stmts {
		w.walkStmt(s, env)
	}
}

func (w *wireWalker) walkStmt(stmt ast.Stmt, env *guardEnv) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		w.checkExpr(s.Cond, env)
		guards := w.condGuards(s.Cond)
		bodyEnv := env.clone()
		bodyEnv.addGuards(guards)
		w.walkBlock(s.Body.List, bodyEnv)
		if s.Else != nil {
			elseEnv := env.clone()
			elseEnv.addGuards(guards)
			w.walkStmt(s.Else, elseEnv)
		}
		if terminates(s.Body) {
			env.addGuards(guards)
		}
	case *ast.ForStmt:
		loopEnv := env.clone()
		if s.Init != nil {
			w.walkStmt(s.Init, loopEnv)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, loopEnv)
			loopEnv.addGuards(w.condGuards(s.Cond))
		}
		w.walkBlock(s.Body.List, loopEnv)
		if s.Post != nil {
			w.walkStmt(s.Post, loopEnv)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, env)
		bodyEnv := env.clone()
		if w.isByteSlice(s.X) {
			bodyEnv.guarded[exprString(s.X)] = true
		}
		w.walkBlock(s.Body.List, bodyEnv)
	case *ast.BlockStmt:
		w.walkBlock(s.List, env.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, env)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.checkExpr(e, env)
			}
			w.walkBlock(cc.Body, env.clone())
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		for _, c := range s.Body.List {
			w.walkBlock(c.(*ast.CaseClause).Body, env.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, env.clone())
			}
			w.walkBlock(cc.Body, env.clone())
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, env)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, env)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, env)
		}
		w.recordLenDerived(s, env)
	case *ast.DeclStmt:
		w.checkExpr(s, env)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					for _, base := range w.lenBases(vs.Values[i], env) {
						env.markDerived(base, name.Name)
					}
				}
			}
		}
	default:
		w.checkExpr(stmt, env)
	}
}

// recordLenDerived marks LHS variables assigned from expressions that
// pin them to len(base) for some []byte base.
func (w *wireWalker) recordLenDerived(s *ast.AssignStmt, env *guardEnv) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		for _, base := range w.lenBases(s.Rhs[i], env) {
			env.markDerived(base, id.Name)
		}
	}
}

// lenBases returns the []byte bases whose length the expression is
// derived from: len(base) calls and identifiers already marked derived.
func (w *wireWalker) lenBases(expr ast.Expr, env *guardEnv) []string {
	var bases []string
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" && len(n.Args) == 1 {
				if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin && w.isByteSlice(n.Args[0]) {
					bases = append(bases, exprString(n.Args[0]))
				}
			}
		case *ast.Ident:
			for base, vars := range env.lenDerived {
				if vars[n.Name] {
					bases = append(bases, base)
				}
			}
		}
		return true
	})
	return bases
}

// checkExpr inspects a node for index/slice expressions over []byte and
// reports any not justified by the current guard environment. Function
// literals are walked with a snapshot of the environment.
func (w *wireWalker) checkExpr(node ast.Node, env *guardEnv) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkBlock(n.Body.List, env.clone())
			return false
		case *ast.IndexExpr:
			if w.isByteSlice(n.X) && !w.indexSafe(n.X, n.Index, env) {
				w.pass.Reportf(n.Pos(), "index of wire buffer %s is not dominated by a len(%s) bounds guard", exprString(n.X), exprString(n.X))
			}
		case *ast.SliceExpr:
			if !w.isByteSlice(n.X) {
				return true
			}
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil && !w.sliceBoundSafe(n.X, bound, env) {
					w.pass.Reportf(n.Pos(), "slice of wire buffer %s is not dominated by a len(%s) bounds guard", exprString(n.X), exprString(n.X))
					break
				}
			}
		}
		return true
	})
}

// isByteSlice reports whether the expression's type is a []byte slice
// (arrays and strings are out of scope).
func (w *wireWalker) isByteSlice(expr ast.Expr) bool {
	t := w.pass.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// baseGuarded reports whether the buffer expression itself is covered
// by a dominating guard.
func (w *wireWalker) baseGuarded(base ast.Expr, env *guardEnv) bool {
	key := exprString(base)
	if env.guarded[key] {
		return true
	}
	if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
		if env.guarded["recv:"+exprString(sel.X)] {
			return true
		}
	}
	return false
}

// indexSafe reports whether base[idx] is acceptably guarded.
func (w *wireWalker) indexSafe(base, idx ast.Expr, env *guardEnv) bool {
	if w.baseGuarded(base, env) {
		return true
	}
	return w.boundMentionsLen(base, idx, env)
}

// sliceBoundSafe reports whether one explicit bound of base[lo:hi] is
// acceptably guarded. The constant 0 is always in bounds for a slice.
func (w *wireWalker) sliceBoundSafe(base, bound ast.Expr, env *guardEnv) bool {
	if tv, ok := w.pass.Info.Types[bound]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return true
		}
	}
	if w.baseGuarded(base, env) {
		return true
	}
	return w.boundMentionsLen(base, bound, env)
}

// boundMentionsLen reports whether the bound expression is pinned to
// len(base): it contains len(base) directly or a variable recorded as
// derived from it.
func (w *wireWalker) boundMentionsLen(base, bound ast.Expr, env *guardEnv) bool {
	baseKey := exprString(base)
	for _, b := range w.lenBases(bound, env) {
		if b == baseKey {
			return true
		}
	}
	return false
}

// condGuards extracts the guard keys established by a condition:
// the argument of every len(...) call over a []byte, and the receiver
// of every field selection (the decoder-cursor idiom).
func (w *wireWalker) condGuards(cond ast.Expr) []string {
	var keys []string
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" && len(n.Args) == 1 {
				if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					keys = append(keys, exprString(n.Args[0]))
				}
			}
		case *ast.SelectorExpr:
			// Only value fields, not method calls or package selectors.
			if sel, ok := w.pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				keys = append(keys, "recv:"+exprString(n.X))
			}
		}
		return true
	})
	return keys
}

// terminates reports whether a block always transfers control away:
// its last statement is a return, branch, or panic-like call.
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Panic" || name == "Panicf"
		}
	}
	return false
}
