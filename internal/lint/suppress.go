package lint

import (
	"go/ast"
	"strings"
)

// Waiver directives. Each analyzer that supports per-function waivers
// names its directive here; the call-graph builder collects every
// //repro:<name> directive on a declaration into CallNode.Directives,
// and the owning analyzer decides the semantics (detertaint and
// ctxprop absorb — callers of a waived function stay clean — while
// wiretaint only silences the waived function's own sinks and keeps
// propagating taint through it). A directive without a reason is never
// a waiver: each analyzer reports it as a finding of its own.
const (
	// CtxExemptDirective marks a function that legitimately blocks
	// without a context.Context (deadline-armed I/O, CPU-bound
	// singleflight waits, lifecycle owned by a shutdown func).
	CtxExemptDirective = "//repro:ctxexempt"
	// WireTrustedDirective marks a function whose allocation/index
	// sites are bounded by means the taint analysis cannot see (e.g.
	// fuzz-verified framing). Taint still flows through it.
	WireTrustedDirective = "//repro:wiretrusted"
	// HotPathDirective roots the hotpathalloc analysis: everything
	// statically reachable from an annotated function must be free of
	// allocation sites. The reason states why the path is hot.
	HotPathDirective = "//repro:hotpath"
	// AllocOKDirective waives allocation findings on one function and
	// absorbs: hotpathalloc stops propagating through it, and bufalias
	// skips its buffer-escape checks. The reason must say why the
	// allocation (or retention) is acceptable on a hot path.
	AllocOKDirective = "//repro:allocok"
)

// parseDirectives collects every //repro:<name> directive in a doc
// comment group, keyed by the full directive ("//repro:ctxexempt"),
// with the rest of the line — the mandatory reason — as the value.
// Returns nil when the declaration carries no directive.
func parseDirectives(doc *ast.CommentGroup) map[string]string {
	if doc == nil {
		return nil
	}
	var out map[string]string
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(c.Text, "//repro:")
		if !found {
			continue
		}
		name, reason, _ := strings.Cut(rest, " ")
		if name == "" {
			continue
		}
		if out == nil {
			out = make(map[string]string)
		}
		out["//repro:"+name] = strings.TrimSpace(reason)
	}
	return out
}

// ParseExcludes splits a -exclude flag value into path fragments,
// dropping empties so "a,,b," behaves like "a,b".
func ParseExcludes(flagValue string) []string {
	var out []string
	for _, part := range strings.Split(flagValue, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Suppress drops diagnostics whose file path contains any of the
// exclude fragments. Matching is substring-based: "internal/netsim"
// suppresses the whole package, "rdata.go" one file.
func Suppress(diags []Diagnostic, excludes []string) []Diagnostic {
	if len(excludes) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ex := range excludes {
			if strings.Contains(d.Pos.Filename, ex) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// JSONDiagnostic is the stable -json output shape of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// ToJSON converts diagnostics to the -json wire shape. The result is
// never nil, so empty runs encode as [] rather than null.
func ToJSON(diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}
