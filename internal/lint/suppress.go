package lint

import "strings"

// ParseExcludes splits a -exclude flag value into path fragments,
// dropping empties so "a,,b," behaves like "a,b".
func ParseExcludes(flagValue string) []string {
	var out []string
	for _, part := range strings.Split(flagValue, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Suppress drops diagnostics whose file path contains any of the
// exclude fragments. Matching is substring-based: "internal/netsim"
// suppresses the whole package, "rdata.go" one file.
func Suppress(diags []Diagnostic, excludes []string) []Diagnostic {
	if len(excludes) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ex := range excludes {
			if strings.Contains(d.Pos.Filename, ex) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// JSONDiagnostic is the stable -json output shape of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// ToJSON converts diagnostics to the -json wire shape. The result is
// never nil, so empty runs encode as [] rather than null.
func ToJSON(diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}
