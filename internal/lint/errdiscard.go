package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDiscardAnalyzer flags discarded error returns. A measurement
// pipeline that silently drops I/O or decode errors produces tables
// that look complete but are not — the "unchecked zone transfer
// failure" class of bug. Two shapes are reported:
//
//   - a call whose results include an error used as a bare statement;
//   - an assignment that discards every result (all blanks, at least
//     one of them an error) with no justification comment on the same
//     line or the line above;
//   - an error-returning call spawned directly by a go or defer
//     statement (`defer f.Close()`, `go w.Flush()`): the statement
//     form has no error channel at all, so the drop must either be
//     justified by a comment (same line or the line above) or the call
//     wrapped in a function that handles the error. A deferred Close
//     on a written file is the classic silent data-loss site.
//
// fmt's Print family and the Write/String methods of strings.Builder
// and bytes.Buffer are exempt: their error results are vestigial
// (documented never to fail for those receivers) and checking them is
// pure noise.
var ErrDiscardAnalyzer = &Analyzer{
	Name: "errdiscard",
	Doc: "flag error returns dropped on the floor, either as bare call " +
		"statements or as uncommented _ = assignments",
	Run: runErrDiscard,
}

func runErrDiscard(pass *Pass) {
	for _, f := range pass.Files {
		comments := commentLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				checkSpawnedCall(pass, comments, n.Call, "defer")
			case *ast.GoStmt:
				checkSpawnedCall(pass, comments, n.Call, "go")
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if errIdx := errorResultIndex(pass.Info, call); errIdx >= 0 && !errExempt(pass.Info, call) {
					pass.Reportf(n.Pos(), "result of %s includes an error that is dropped; handle it or assign with a justification comment", callName(pass.Info, call))
				}
			case *ast.AssignStmt:
				if !discardsError(pass.Info, n) {
					return true
				}
				line := pass.Fset.Position(n.Pos()).Line
				if comments[line] || comments[line-1] {
					return true
				}
				pass.Reportf(n.Pos(), "error discarded with _ = and no justification comment; add a same-line or preceding comment explaining why the error is safe to ignore")
			}
			return true
		})
	}
}

// checkSpawnedCall flags an error-returning call used directly as a go
// or defer statement. A func literal is not a drop site itself — its
// body is inspected by the normal statement walk.
func checkSpawnedCall(pass *Pass, comments map[int]bool, call *ast.CallExpr, stmt string) {
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return
	}
	if errorResultIndex(pass.Info, call) < 0 || errExempt(pass.Info, call) {
		return
	}
	line := pass.Fset.Position(call.Pos()).Line
	if comments[line] || comments[line-1] {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s is dropped by the %s statement; wrap it in a func that handles the error or add a justification comment", callName(pass.Info, call), stmt)
}

// commentLines returns the set of lines in f that carry a comment.
// Golden-test expectation markers ("// want ...") are not justification
// comments and do not count.
func commentLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// want ") {
				continue
			}
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				lines[l] = true
			}
		}
	}
	return lines
}

// errorResultIndex returns the index of the first error in the call's
// result tuple, or -1 if the call returns no error (or is a builtin,
// conversion, or function-typed variable we cannot resolve).
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(tv.Type) {
			return 0
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExempt reports whether the call's error result is conventionally
// ignorable: fmt's print family, or the never-failing Write/WriteString/
// WriteByte/WriteRune methods of strings.Builder and bytes.Buffer.
func errExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	if (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer") {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// callName renders the callee for a diagnostic message.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return fn.Name()
			}
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return exprString(call.Fun)
}

// discardsError reports whether the assignment throws away every result
// of an error-returning call: all LHS are blank and at least one
// discarded position is an error. `x, _ := f()` keeps a value and is a
// deliberate, visible choice, so only all-blank forms are flagged.
func discardsError(info *types.Info, n *ast.AssignStmt) bool {
	for _, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	for _, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if errorResultIndex(info, call) >= 0 && !errExempt(info, call) {
			return true
		}
	}
	return false
}
