package lint

import (
	"go/ast"
	"go/token"
)

// GoLeakAnalyzer enforces goroutine hygiene: every go statement must
// spawn work with a reachable termination path. The scanner's worker
// pools, the obs HTTP endpoint, and the netsim servers mean the
// pipeline is permanently multi-goroutine now, and a leaked goroutine
// at 14.7 K qps scale is a memory leak with a thread attached. Two
// provably-unterminating shapes are reported:
//
//   - an unconditional `for { ... }` loop in the spawned function with
//     no way out: no return, no break that targets it, no panic or
//     runtime.Goexit/os.Exit — the goroutine can never finish, and
//     there is no cancellation case to add one (the netsim servers'
//     accept loops pass because their shutdown select returns);
//
//   - a bare blocking channel send (`ch <- v` outside any select) in
//     the spawned function: if the receiver has gone away — context
//     cancelled, early return on the consuming side — the goroutine
//     blocks forever. Wrap the send in a select with a <-ctx.Done()
//     (or done-channel) case.
//
// The spawned body is resolved through the call graph: `go s.serve()`
// is analyzed via serve's declaration, not just go func literals.
// Loops with conditions or range clauses are assumed bounded (a
// heuristic: range over a channel terminates on close, a condition is
// assumed reachable), so the analyzer under-reports rather than
// drowning real findings in noise.
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: "flag go statements whose goroutine provably cannot " +
		"terminate: unconditional loops with no exit, and blocking " +
		"channel sends with no cancellation case",
	RunProject: runGoLeak,
}

func runGoLeak(pass *ProjectPass) {
	reported := map[token.Pos]bool{}
	for _, node := range pass.Project.Graph.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // nested literals are their own nodes
			}
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			spawned := spawnedBody(pass.Project.Graph, node, gs)
			if spawned == nil {
				return true // external or dynamic callee: cannot analyze
			}
			checkGoroutineBody(pass, node, gs, spawned, reported)
			return true
		})
	}
}

// spawnedBody resolves the function body a go statement runs: a
// literal's own body, or the declaration of a statically resolved
// callee in the loaded packages.
func spawnedBody(g *CallGraph, node *CallNode, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(node.Pkg.Info, gs.Call)
	if fn == nil {
		return nil
	}
	callee := g.FuncNode(fn)
	if callee == nil {
		return nil
	}
	return callee.Body()
}

// checkGoroutineBody applies both rules to one spawned body.
func checkGoroutineBody(pass *ProjectPass, node *CallNode, gs *ast.GoStmt, body *ast.BlockStmt, reported map[token.Pos]bool) {
	fset := node.Pkg.Fset
	goPos := fset.Position(gs.Pos())
	// A send that is a select communication clause has, by
	// construction, alternative cases (or a deliberate single-case
	// select); collect them so the walk below exempts them.
	selectComms := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					selectComms[cc.Comm] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal inside the spawned body runs in its own right;
			// its own go statements are checked when its node walks.
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopCanExit(n) && !reported[n.Pos()] {
				reported[n.Pos()] = true
				pass.Reportf(fset, n.Pos(),
					"unconditional loop in goroutine spawned at %s:%d has no termination path; add a return under a <-ctx.Done() or done-channel select case",
					shortPath(goPos.Filename), goPos.Line)
			}
		case *ast.SendStmt:
			if selectComms[n] || reported[n.Pos()] {
				return true
			}
			reported[n.Pos()] = true
			pass.Reportf(fset, n.Pos(),
				"blocking channel send in goroutine spawned at %s:%d has no cancellation case; wrap it in a select with <-ctx.Done() (or a done channel)",
				shortPath(goPos.Filename), goPos.Line)
		}
		return true
	})
}

// loopCanExit reports whether an unconditional for loop contains a
// statement that leaves it: a return, a break targeting this loop
// (unlabeled breaks inside nested for/switch/select target those
// instead; a labeled break whose label is declared outside the loop
// body exits the loop or an ancestor, either way leaving it), panic,
// runtime.Goexit, os.Exit, or log.Fatal*.
func loopCanExit(loop *ast.ForStmt) bool {
	innerLabels := map[string]bool{}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			innerLabels[ls.Label.Name] = true
		}
		return true
	})
	exits := false
	var walk func(n ast.Node, depth int) bool
	walk = func(n ast.Node, depth int) bool {
		if exits {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // break/return inside a literal exits the literal
		case *ast.ReturnStmt:
			exits = true
			return false
		case *ast.BranchStmt:
			if n.Tok != token.BREAK {
				return true
			}
			if n.Label == nil && depth == 0 {
				exits = true
			}
			if n.Label != nil && !innerLabels[n.Label.Name] {
				exits = true
			}
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				exits = true
				return false
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok {
					switch {
					case x.Name == "runtime" && sel.Sel.Name == "Goexit",
						x.Name == "os" && sel.Sel.Name == "Exit",
						x.Name == "log" && (sel.Sel.Name == "Fatal" || sel.Sel.Name == "Fatalf" || sel.Sel.Name == "Fatalln"):
						exits = true
						return false
					}
				}
			}
			return true
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// One breakable level deeper: unlabeled breaks inside no
			// longer target our loop.
			ast.Inspect(n, func(inner ast.Node) bool {
				if inner == n {
					return true
				}
				return walk(inner, depth+1)
			})
			return false
		}
		return true
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool { return walk(n, 0) })
	return exits
}
