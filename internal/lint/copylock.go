package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CopyLockAnalyzer flags by-value copies of types that transitively
// contain a sync.Mutex, sync.RWMutex, or sync.WaitGroup. A copied lock
// is a fresh, unlocked lock: the copy silently stops synchronizing with
// the original, which under the scanner's worker pools turns into data
// races that -race only catches when the schedule cooperates. Reported
// shapes:
//
//   - method receivers, parameters, and results declared by value with
//     a lock-bearing type;
//   - assignments that read a lock-bearing value out of a variable,
//     field, index, or dereference (composite literals and function
//     calls construct fresh values and are fine);
//   - range clauses whose value variable copies a lock-bearing element.
var CopyLockAnalyzer = &Analyzer{
	Name: "copylock",
	Doc: "flag by-value copies of structs transitively containing " +
		"sync.Mutex, sync.RWMutex, or sync.WaitGroup",
	Run: runCopyLock,
}

func runCopyLock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldList(pass, n.Recv, "receiver")
				}
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
}

// checkFieldList reports lock-bearing by-value entries of a receiver,
// parameter, or result list.
func checkFieldList(pass *Pass, fl *ast.FieldList, kind string) {
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lock := lockPath(t); lock != "" {
			pass.Reportf(field.Type.Pos(), "by-value %s of type %s copies %s; use a pointer", kind, t.String(), lock)
		}
	}
}

// checkAssign reports assignments whose RHS reads a lock-bearing value
// out of existing storage. Composite literals and calls construct new
// values, so only identifier/selector/index/star reads copy a live lock.
func checkAssign(pass *Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		// Assigning to _ evaluates but does not retain a copy.
		if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		expr := ast.Unparen(rhs)
		switch expr.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		t := pass.Info.TypeOf(expr)
		if t == nil {
			continue
		}
		if lock := lockPath(t); lock != "" {
			pass.Reportf(rhs.Pos(), "assignment copies %s (value of type %s); take a pointer instead", lock, t.String())
		}
	}
}

// checkRange reports range value variables that copy a lock-bearing
// element out of a slice, array, or map.
func checkRange(pass *Pass, n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := pass.Info.TypeOf(n.Value)
	if t == nil {
		return
	}
	if lock := lockPath(t); lock != "" {
		pass.Reportf(n.Value.Pos(), "range value copies %s (element type %s); range over indices or use pointers", lock, t.String())
	}
}

// lockPath returns a human-readable path to the first lock found inside
// t ("sync.Mutex", "field reg.mu (sync.RWMutex)"), or "" if t carries
// no lock by value. Pointers, maps, slices, and channels stop the
// search: copying a pointer to a lock is fine.
func lockPath(t types.Type) string {
	return findLock(t, map[types.Type]bool{})
}

func findLock(t types.Type, visited map[types.Type]bool) string {
	if visited[t] {
		return ""
	}
	visited[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup":
				return "sync." + obj.Name()
			}
		}
		return findLock(named.Underlying(), visited)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			inner := findLock(f.Type(), visited)
			if inner == "" {
				continue
			}
			if f.Embedded() {
				return inner
			}
			if strings.HasPrefix(inner, "sync.") {
				return "field " + f.Name() + " (" + inner + ")"
			}
			return "field " + f.Name() + "." + strings.TrimPrefix(inner, "field ")
		}
	case *types.Array:
		return findLock(u.Elem(), visited)
	}
	return ""
}
