package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// buildFixtureGraph type-checks the callgraph fixture and returns its
// graph.
func buildFixtureGraph(t *testing.T) *lint.CallGraph {
	t.Helper()
	fset := token.NewFileSet()
	srcDir := filepath.Join("testdata", "src", "callgraph")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{}
	tpkg, err := conf.Check("repro/internal/cgfix", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &lint.Package{Path: "repro/internal/cgfix", Fset: fset, Files: files, Types: tpkg, Info: info}
	return lint.BuildCallGraph([]*lint.Package{pkg})
}

func findNode(t *testing.T, g *lint.CallGraph, name string) *lint.CallNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q in graph", name)
	return nil
}

// edgeKinds renders a node's outgoing edges as "callee/kind" strings.
func edgeKinds(n *lint.CallNode) []string {
	var out []string
	for _, e := range n.Out {
		callee := e.Callee.Name()
		if strings.HasPrefix(callee, "func literal") {
			callee = "literal"
		}
		out = append(out, callee+"/"+e.Kind.String())
	}
	return out
}

func hasEdge(n *lint.CallNode, want string) bool {
	for _, got := range edgeKinds(n) {
		if got == want {
			return true
		}
	}
	return false
}

// TestCallGraphEdgeKinds pins one edge of every kind the builder
// resolves: call, go, defer, closure, ref, and interface dispatch.
func TestCallGraphEdgeKinds(t *testing.T) {
	g := buildFixtureGraph(t)
	cases := []struct {
		node string
		edge string
	}{
		{"cgfix.plainCall", "cgfix.callee/call"},
		{"cgfix.spawn", "cgfix.callee/go"},
		{"cgfix.deferred", "cgfix.callee/defer"},
		{"cgfix.closure", "literal/closure"},
		{"cgfix.immediate", "literal/closure"},
		{"cgfix.immediate", "literal/call"},
		{"cgfix.reference", "cgfix.callee/ref"},
		{"cgfix.dispatch", "RealDoer.Do/dynamic"},
	}
	for _, tc := range cases {
		n := findNode(t, g, tc.node)
		if !hasEdge(n, tc.edge) {
			t.Errorf("%s: missing edge %s; have %v", tc.node, tc.edge, edgeKinds(n))
		}
	}

	// The literal inside closure() is its own node and carries the
	// enclosing call's edges, not the encloser's.
	lit := findNode(t, g, "cgfix.closure").Out[0].Callee
	if lit.Func != nil {
		t.Errorf("closure edge callee is not a literal node: %s", lit.Name())
	}

	// The spawned callee's In edges point back at the spawner.
	callee := findNode(t, g, "cgfix.callee")
	found := false
	for _, e := range callee.In {
		if e.Caller.Name() == "cgfix.spawn" && e.Kind == lint.EdgeGo {
			found = true
		}
	}
	if !found {
		t.Errorf("cgfix.callee has no incoming go edge from spawn")
	}
}

// TestCallGraphCrossPackage drives the real loader over two repo
// packages and asserts a cross-package edge resolves. This pins the
// funcKey identity bridge: each package is type-checked against export
// data, so the same function is a distinct types.Func object on the
// two sides of the import.
func TestCallGraphCrossPackage(t *testing.T) {
	pkgs, err := lint.Load("../..", "./internal/atlas", "./internal/testbed")
	if err != nil {
		t.Fatal(err)
	}
	g := lint.BuildCallGraph(pkgs)
	probe := findNode(t, g, "testbed.ProbeResolver")
	for _, e := range probe.In {
		if e.Caller.Pkg.Path == "repro/internal/atlas" {
			return
		}
	}
	t.Errorf("testbed.ProbeResolver has no caller from repro/internal/atlas; in-edges: %d", len(probe.In))
}
