package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterTaintAnalyzer is the interprocedural twin of the determinism
// analyzer. Where determinism inspects one body at a time inside a
// fixed package scope, detertaint seeds a taint set with every
// function that directly touches a nondeterminism source —
//
//   - time.Now / time.Since / time.Until (wall clock),
//   - package-level math/rand and math/rand/v2 draws (the global,
//     unseeded source; New* constructors are fine),
//   - output written inside a range over a map (iteration order),
//
// — and propagates it backward over the call graph, across package
// boundaries, go/defer statements, function literals, interface
// dispatch, and function-value references. Any function declared in
// the deterministic layers (internal/core, population, compliance,
// analysis, respop) from which a source is reachable is reported with
// the full call chain, so "we audited the scanner once" becomes a
// per-commit proof.
//
// Sanctioned roots are annotated in the code, not listed here: a
// //repro:nondeterministic directive (with a mandatory reason) on a
// function declaration absorbs taint — its callers stay clean. That
// replaces the old by-filename exemption of internal/obs/trace.go: the
// tracer's Start/End carry the directive, and any new wall-clock read
// anywhere else must either be refactored or argue its own exemption
// in a reviewable one-line annotation.
var DeterTaintAnalyzer = &Analyzer{
	Name: "detertaint",
	Doc: "taint-propagate nondeterminism sources (wall clock, global " +
		"rand, map-order-dependent output) over the cross-package call " +
		"graph and report every reachable path out of the deterministic " +
		"core/population/compliance/analysis layers",
	RunProject: runDeterTaint,
}

// detertaintRoots are the package suffixes whose functions must not
// reach a nondeterminism source (§4.1 survey and §6 resolver-study
// aggregation layers; matching the determinism analyzer's scope plus
// core and compliance, which only the call graph can police).
var detertaintRoots = []string{
	"internal/core",
	"internal/population",
	"internal/compliance",
	"internal/analysis",
	"internal/respop",
}

// taintSource is one direct nondeterminism site inside a function.
type taintSource struct {
	desc string // e.g. "time.Now"
	pos  token.Pos
}

// taintMark records how taint reached a node: through which callee
// (nil when the node is itself a seed) toward which source.
type taintMark struct {
	next   *CallNode
	source taintSource
}

func runDeterTaint(pass *ProjectPass) {
	g := pass.Project.Graph

	// Directive hygiene: an annotation without a reason is not a
	// waiver, it is a finding — exemptions must be reviewable.
	for _, node := range g.Nodes {
		if node.Annotated && node.NondetReason == "" {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s directive without a reason; state why this nondeterminism root is sanctioned", NondetDirective)
		}
	}

	// Seed pass: find direct sources per node. Annotated nodes absorb
	// their own sources and incoming taint alike.
	marks := map[*CallNode]taintMark{}
	var queue []*CallNode
	for _, node := range g.Nodes {
		if sanctioned(node) {
			continue
		}
		if src, ok := directSource(node); ok {
			marks[node] = taintMark{source: src}
			queue = append(queue, node)
		}
	}

	// Backward propagation: callers of tainted nodes become tainted,
	// stopping at sanctioned roots. BFS yields shortest chains.
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, e := range node.In {
			caller := e.Caller
			if _, seen := marks[caller]; seen || sanctioned(caller) {
				continue
			}
			marks[caller] = taintMark{next: node, source: marks[node].source}
			queue = append(queue, caller)
		}
	}

	// Report the innermost scoped function of each chain: the point
	// where a deterministic layer escapes into tainted territory. Outer
	// scoped callers are implied by that finding and stay silent.
	// Literals cannot report (they have no declaration to annotate), so
	// the successor check skips them: a scoped function whose taint
	// flows through its own closure still reports.
	for _, node := range g.Nodes {
		mark, tainted := marks[node]
		if !tainted || node.Func == nil || !scopedNode(node) {
			continue
		}
		succ := mark.next
		for succ != nil && succ.Func == nil {
			succ = marks[succ].next
		}
		if succ != nil && scopedNode(succ) {
			continue
		}
		pass.Reportf(node.Pkg.Fset, node.Pos(),
			"%s reaches nondeterminism source %s: %s; thread the value through the config or annotate the sanctioned root with %s <reason>",
			node.Name(), mark.source.desc, chainString(node, marks), NondetDirective)
	}
}

// sanctioned reports whether the node carries a usable directive. A
// literal inherits nothing: only declared functions can be annotated,
// keeping every waiver greppable.
func sanctioned(node *CallNode) bool {
	return node.Annotated && node.NondetReason != ""
}

// scopedNode reports whether the node's body lives in a deterministic
// root package.
func scopedNode(node *CallNode) bool {
	for _, p := range detertaintRoots {
		if pathSuffixMatch(node.Pkg.Path, p) {
			return true
		}
	}
	return false
}

// chainString renders the taint chain from node to its source, e.g.
// "scanShard → scanner.ScanAll → (*Scanner).query → time.Now".
func chainString(node *CallNode, marks map[*CallNode]taintMark) string {
	var parts []string
	for n := node; n != nil; {
		parts = append(parts, n.Name())
		mark := marks[n]
		if mark.next == nil {
			parts = append(parts, mark.source.desc)
			break
		}
		n = mark.next
	}
	return strings.Join(parts, " → ")
}

// directSource returns the first nondeterminism source called or
// expressed directly in node's own body (nested literals are their own
// nodes and report separately).
func directSource(node *CallNode) (taintSource, bool) {
	body := node.Body()
	if body == nil {
		return taintSource{}, false
	}
	info := node.Pkg.Info
	var found *taintSource
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // methods (e.g. a seeded *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				found = &taintSource{desc: "time." + fn.Name(), pos: call.Pos()}
			}
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(fn.Name(), "New") {
				found = &taintSource{desc: fn.Pkg().Name() + "." + fn.Name() + " (global source)", pos: call.Pos()}
			}
		}
		return true
	})
	if found != nil {
		return *found, true
	}
	if pos, ok := mapOrderOutput(node); ok {
		return taintSource{desc: "map-iteration-order output", pos: pos}, true
	}
	return taintSource{}, false
}

// mapOrderOutput reports whether node's own body writes to an output
// sink inside a range over a map — the order-dependence seed the
// intraprocedural determinism analyzer also recognizes.
func mapOrderOutput(node *CallNode) (token.Pos, bool) {
	info := node.Pkg.Info
	var pos token.Pos
	var found bool
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		ast.Inspect(rs.Body, func(inner ast.Node) bool {
			if found {
				return false
			}
			if _, ok := inner.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := inner.(*ast.CallExpr); ok && isOutputCall(info, call) {
				pos, found = call.Pos(), true
				return false
			}
			return true
		})
		return true
	})
	return pos, found
}
