package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// The golden tests type-check each testdata/src/<analyzer> fixture
// under a fake import path chosen so the analyzer's package scoping
// applies, run the single analyzer, and compare its diagnostics against
// the fixture's `// want `regex`` comments analysistest-style: every
// diagnostic must land on a line carrying a matching want, and every
// want must be hit.
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		dir      string
		pkgPath  string
	}{
		{lint.DeterminismAnalyzer, "determinism", "repro/internal/population"},
		{lint.WireSafetyAnalyzer, "wiresafety", "repro/internal/dnswire"},
		{lint.ErrDiscardAnalyzer, "errdiscard", "repro/internal/lintfixture"},
		{lint.CopyLockAnalyzer, "copylock", "repro/internal/lintfixture"},
		{lint.RFCConstAnalyzer, "rfcconst", "repro/internal/dnswire"},
		{lint.GoLeakAnalyzer, "goleak", "repro/internal/lintfixture"},
		{lint.LockOrderAnalyzer, "lockorder", "repro/internal/lintfixture"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			runGolden(t, tc.analyzer, tc.dir, tc.pkgPath)
		})
	}
}

// TestGoldenDeterTaint runs the taint analyzer over a two-package
// fixture: an unscoped infrastructure package and a scoped package
// importing it, so cross-package chains and sanctioned roots are
// exercised under the same want-marker contract.
func TestGoldenDeterTaint(t *testing.T) {
	runGoldenMulti(t, lint.DeterTaintAnalyzer, "detertaint", []fixturePkg{
		{subdir: "scanlib", pkgPath: "repro/internal/scanlib"},
		{subdir: "core", pkgPath: "repro/internal/core"},
	})
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type wantDiag struct {
	re      *regexp.Regexp
	matched bool
}

// fixtureWants maps file -> line -> expectation.
type fixtureWants map[string]map[int]*wantDiag

// parseFixtureDir parses every .go file in srcDir, collecting want
// markers into wants and import paths into imports.
func parseFixtureDir(t *testing.T, fset *token.FileSet, srcDir string, wants fixtureWants, imports map[string]bool) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(srcDir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int]*wantDiag{}
				}
				wants[pos.Filename][pos.Line] = &wantDiag{re: regexp.MustCompile(m[1])}
			}
		}
	}
	return files
}

func newTypeInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// checkDiags compares diagnostics against the collected want markers.
func checkDiags(t *testing.T, diags []lint.Diagnostic, wants fixtureWants) {
	t.Helper()
	for _, d := range diags {
		w := wants[d.Pos.Filename][d.Pos.Line]
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s:%d does not match want %q: %s", d.Pos.Filename, d.Pos.Line, w.re, d.Message)
			continue
		}
		w.matched = true
	}
	for file, byLine := range wants {
		for line, w := range byLine {
			if !w.matched {
				t.Errorf("missing diagnostic: %s:%d want %q", file, line, w.re)
			}
		}
	}
}

func runGolden(t *testing.T, analyzer *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	wants := fixtureWants{}
	imported := map[string]bool{}
	files := parseFixtureDir(t, fset, filepath.Join("testdata", "src", dir), wants, imported)

	conf := types.Config{}
	if len(imported) > 0 {
		var paths []string
		for p := range imported {
			paths = append(paths, p)
		}
		imp, err := lint.StdImporter(fset, paths...)
		if err != nil {
			t.Fatal(err)
		}
		conf.Importer = imp
	}
	info := newTypeInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &lint.Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}

	checkDiags(t, lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{analyzer}), wants)
}

// fixturePkg is one package of a multi-package golden fixture.
type fixturePkg struct {
	subdir  string // under testdata/src/<root>
	pkgPath string // fake import path (drives scoping and imports)
}

// fixtureImporter resolves the fixture's own fake import paths to the
// already-checked packages and defers everything else to the standard
// importer.
type fixtureImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	if fi.std == nil {
		return nil, fmt.Errorf("fixture imports %q but no standard importer is configured", path)
	}
	return fi.std.Import(path)
}

// runGoldenMulti type-checks the fixture packages in order (later ones
// may import earlier ones by their fake paths), runs the analyzer over
// the whole set, and checks want markers across every file.
func runGoldenMulti(t *testing.T, analyzer *lint.Analyzer, root string, fixtures []fixturePkg) {
	t.Helper()
	fset := token.NewFileSet()
	wants := fixtureWants{}
	imported := map[string]bool{}
	filesByPkg := make([][]*ast.File, len(fixtures))
	local := map[string]*types.Package{}
	for i, fx := range fixtures {
		srcDir := filepath.Join("testdata", "src", root, fx.subdir)
		filesByPkg[i] = parseFixtureDir(t, fset, srcDir, wants, imported)
	}
	var stdPaths []string
	for p := range imported {
		isLocal := false
		for _, fx := range fixtures {
			if p == fx.pkgPath {
				isLocal = true
			}
		}
		if !isLocal {
			stdPaths = append(stdPaths, p)
		}
	}
	var std types.Importer
	if len(stdPaths) > 0 {
		var err error
		std, err = lint.StdImporter(fset, stdPaths...)
		if err != nil {
			t.Fatal(err)
		}
	}
	conf := types.Config{Importer: &fixtureImporter{std: std, local: local}}

	var pkgs []*lint.Package
	for i, fx := range fixtures {
		info := newTypeInfo()
		tpkg, err := conf.Check(fx.pkgPath, fset, filesByPkg[i], info)
		if err != nil {
			t.Fatalf("type-checking fixture package %s: %v", fx.pkgPath, err)
		}
		local[fx.pkgPath] = tpkg
		pkgs = append(pkgs, &lint.Package{Path: fx.pkgPath, Fset: fset, Files: filesByPkg[i], Types: tpkg, Info: info})
	}

	checkDiags(t, lint.Run(pkgs, []*lint.Analyzer{analyzer}), wants)
}
