package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestGolden checks every analyzer's fixture against its `// want`
// markers through the same harness CI's self-check runs, so a fixture
// that fails here fails `reprolint -selfcheck` identically.
func TestGolden(t *testing.T) {
	for _, gc := range lint.GoldenCases() {
		t.Run(gc.Root, func(t *testing.T) {
			rep, err := lint.CheckFixture("testdata", gc)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range rep.Missing {
				t.Errorf("missing diagnostic: %s", m)
			}
			for _, u := range rep.Unexpected {
				t.Errorf("unexpected diagnostic: %s", u)
			}
		})
	}
}

// goldenCase fetches one analyzer's fixture from the registry.
func goldenCase(t *testing.T, name string) lint.GoldenCase {
	t.Helper()
	for _, gc := range lint.GoldenCases() {
		if gc.Analyzer.Name == name {
			return gc
		}
	}
	t.Fatalf("no golden case for analyzer %q", name)
	return lint.GoldenCase{}
}

// TestCtxExemptWaiverSemantics pins the ctxprop waiver contract beyond
// the want markers: a bare directive is itself a finding, and a waiver
// with a reason absorbs — no diagnostic lands on the waived function
// or on its caller.
func TestCtxExemptWaiverSemantics(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "ctxprop"))
	if err != nil {
		t.Fatal(err)
	}
	var bare bool
	for _, d := range diags {
		if strings.Contains(d.Message, lint.CtxExemptDirective+" directive without a reason") {
			bare = true
		}
		if strings.Contains(d.Message, "DeadlineRead") || strings.Contains(d.Message, "UseWaived") {
			t.Errorf("waiver failed to absorb: %s", d)
		}
	}
	if !bare {
		t.Errorf("bare %s directive was not reported", lint.CtxExemptDirective)
	}
}

// TestWireTrustedPropagatesTaint pins the wiretaint waiver contract:
// the waived function's own sinks are silent, but taint still flows
// through it — the unwaived helper it calls reports, with the waived
// function in the chain. A waiver must never launder attacker bytes
// for the rest of the call tree.
func TestWireTrustedPropagatesTaint(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "wiretaint"))
	if err != nil {
		t.Fatal(err)
	}
	var throughWaived bool
	for _, d := range diags {
		if strings.Contains(d.Message, "wire.Trusted → wire.allocT") {
			throughWaived = true
		}
		if strings.Contains(d.Message, "directive without a reason") {
			continue // the hygiene finding on BareWire names no sink
		}
		if strings.HasSuffix(d.Message, "wire.Trusted") {
			t.Errorf("sink inside the waived function was reported: %s", d)
		}
	}
	if !throughWaived {
		t.Errorf("taint did not propagate through the waived function to wire.allocT")
	}
}

// TestSelfCheckReports exercises the CI entry point end to end: every
// fixture passes and carries its analyzer name and a timing.
func TestSelfCheckReports(t *testing.T) {
	reps, err := lint.SelfCheck("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(lint.GoldenCases()) {
		t.Fatalf("got %d reports, want %d", len(reps), len(lint.GoldenCases()))
	}
	for _, r := range reps {
		if !r.OK() {
			t.Errorf("%s: missing=%v unexpected=%v", r.Analyzer, r.Missing, r.Unexpected)
		}
		if r.Analyzer == "" || r.Fixture == "" {
			t.Errorf("report lacks identity: %+v", r)
		}
		if r.Findings == 0 {
			t.Errorf("%s: fixture produced no findings at all — positive cases missing?", r.Analyzer)
		}
	}
}
