package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestGolden checks every analyzer's fixture against its `// want`
// markers through the same harness CI's self-check runs, so a fixture
// that fails here fails `reprolint -selfcheck` identically.
func TestGolden(t *testing.T) {
	for _, gc := range lint.GoldenCases() {
		t.Run(gc.Root, func(t *testing.T) {
			rep, err := lint.CheckFixture("testdata", gc)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range rep.Missing {
				t.Errorf("missing diagnostic: %s", m)
			}
			for _, u := range rep.Unexpected {
				t.Errorf("unexpected diagnostic: %s", u)
			}
		})
	}
}

// goldenCase fetches one analyzer's fixture from the registry.
func goldenCase(t *testing.T, name string) lint.GoldenCase {
	t.Helper()
	for _, gc := range lint.GoldenCases() {
		if gc.Analyzer.Name == name {
			return gc
		}
	}
	t.Fatalf("no golden case for analyzer %q", name)
	return lint.GoldenCase{}
}

// TestCtxExemptWaiverSemantics pins the ctxprop waiver contract beyond
// the want markers: a bare directive is itself a finding, and a waiver
// with a reason absorbs — no diagnostic lands on the waived function
// or on its caller.
func TestCtxExemptWaiverSemantics(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "ctxprop"))
	if err != nil {
		t.Fatal(err)
	}
	var bare bool
	for _, d := range diags {
		if strings.Contains(d.Message, lint.CtxExemptDirective+" directive without a reason") {
			bare = true
		}
		if strings.Contains(d.Message, "DeadlineRead") || strings.Contains(d.Message, "UseWaived") {
			t.Errorf("waiver failed to absorb: %s", d)
		}
	}
	if !bare {
		t.Errorf("bare %s directive was not reported", lint.CtxExemptDirective)
	}
}

// TestWireTrustedPropagatesTaint pins the wiretaint waiver contract:
// the waived function's own sinks are silent, but taint still flows
// through it — the unwaived helper it calls reports, with the waived
// function in the chain. A waiver must never launder attacker bytes
// for the rest of the call tree.
func TestWireTrustedPropagatesTaint(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "wiretaint"))
	if err != nil {
		t.Fatal(err)
	}
	var throughWaived bool
	for _, d := range diags {
		if strings.Contains(d.Message, "wire.Trusted → wire.allocT") {
			throughWaived = true
		}
		if strings.Contains(d.Message, "directive without a reason") {
			continue // the hygiene finding on BareWire names no sink
		}
		if strings.HasSuffix(d.Message, "wire.Trusted") {
			t.Errorf("sink inside the waived function was reported: %s", d)
		}
	}
	if !throughWaived {
		t.Errorf("taint did not propagate through the waived function to wire.allocT")
	}
}

// TestAllocOKWaiverSemantics pins the hotpathalloc waiver contract:
// bare directives in both directions are findings, a reasoned waiver
// absorbs (the waived callee's allocation sites stay silent even on a
// hot chain), a contradiction of root and waiver on one declaration
// reports, and a waiver that silences nothing is itself a finding.
func TestAllocOKWaiverSemantics(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "hotpathalloc"))
	if err != nil {
		t.Fatal(err)
	}
	var bareRoot, bareWaiver, contradiction, stale bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, lint.HotPathDirective+" directive without a reason"):
			bareRoot = true
		case strings.Contains(d.Message, lint.AllocOKDirective+" directive without a reason"):
			bareWaiver = true
		case strings.Contains(d.Message, "contradict each other"):
			contradiction = true
		case strings.Contains(d.Message, "waives nothing"):
			stale = true
			if !strings.Contains(d.Message, "hotfix.Idle") {
				t.Errorf("stale-waiver finding names the wrong function: %s", d)
			}
		}
		if strings.Contains(d.Message, "hotfix.fill") {
			t.Errorf("waiver failed to absorb the waived callee's allocation: %s", d)
		}
	}
	if !bareRoot {
		t.Errorf("bare %s directive was not reported", lint.HotPathDirective)
	}
	if !bareWaiver {
		t.Errorf("bare %s directive was not reported", lint.AllocOKDirective)
	}
	if !contradiction {
		t.Errorf("contradictory root+waiver declaration was not reported")
	}
	if !stale {
		t.Errorf("stale %s waiver was not reported", lint.AllocOKDirective)
	}
}

// TestBufAliasWaiverSkips pins that a reasoned //repro:allocok on a
// function silences bufalias for that whole function — Trusted returns
// a parameter subslice by documented contract and must stay quiet.
func TestBufAliasWaiverSkips(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "bufalias"))
	if err != nil {
		t.Fatal(err)
	}
	// Trusted returns b[:n] exactly like Window does; if the waiver were
	// ignored the fixture would report one more subslice-return finding
	// than its 8 marked violations.
	if len(diags) != 8 {
		t.Errorf("got %d findings, want exactly the 8 marked violations — the %s waiver on Trusted may not be honored",
			len(diags), lint.AllocOKDirective)
	}
}

// TestPoolSafeDefiniteOnly pins poolsafe's conservatism: the
// disciplined twins — deferred Put, goroutine handoff, both-branch
// Put, per-iteration channel transfer — produce no findings.
func TestPoolSafeDefiniteOnly(t *testing.T) {
	diags, err := lint.RunFixture("testdata", goldenCase(t, "poolsafe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 5 {
		t.Errorf("got %d findings, want exactly the 5 marked violations", len(diags))
	}
	for _, d := range diags {
		for _, clean := range []string{"DeferPut", "Handoff", "ErrPath", "LoopTransfer"} {
			if strings.Contains(d.Message, clean) {
				t.Errorf("disciplined twin %s reported: %s", clean, d)
			}
		}
	}
}

// TestSelfCheckReports exercises the CI entry point end to end: every
// fixture passes and carries its analyzer name and a timing.
func TestSelfCheckReports(t *testing.T) {
	reps, err := lint.SelfCheck("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(lint.GoldenCases()) {
		t.Fatalf("got %d reports, want %d", len(reps), len(lint.GoldenCases()))
	}
	for _, r := range reps {
		if !r.OK() {
			t.Errorf("%s: missing=%v unexpected=%v", r.Analyzer, r.Missing, r.Unexpected)
		}
		if r.Analyzer == "" || r.Fixture == "" {
			t.Errorf("report lacks identity: %+v", r)
		}
		if r.Findings == 0 {
			t.Errorf("%s: fixture produced no findings at all — positive cases missing?", r.Analyzer)
		}
	}
}
