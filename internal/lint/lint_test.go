package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// The golden tests type-check each testdata/src/<analyzer> fixture
// under a fake import path chosen so the analyzer's package scoping
// applies, run the single analyzer, and compare its diagnostics against
// the fixture's `// want `regex`` comments analysistest-style: every
// diagnostic must land on a line carrying a matching want, and every
// want must be hit.
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		dir      string
		pkgPath  string
	}{
		{lint.DeterminismAnalyzer, "determinism", "repro/internal/population"},
		{lint.WireSafetyAnalyzer, "wiresafety", "repro/internal/dnswire"},
		{lint.ErrDiscardAnalyzer, "errdiscard", "repro/internal/lintfixture"},
		{lint.CopyLockAnalyzer, "copylock", "repro/internal/lintfixture"},
		{lint.RFCConstAnalyzer, "rfcconst", "repro/internal/dnswire"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			runGolden(t, tc.analyzer, tc.dir, tc.pkgPath)
		})
	}
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type wantDiag struct {
	re      *regexp.Regexp
	matched bool
}

func runGolden(t *testing.T, analyzer *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	srcDir := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	wants := map[string]map[int]*wantDiag{} // file -> line -> expectation
	imported := map[string]bool{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(srcDir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imported[p] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int]*wantDiag{}
				}
				wants[pos.Filename][pos.Line] = &wantDiag{re: regexp.MustCompile(m[1])}
			}
		}
	}

	conf := types.Config{}
	if len(imported) > 0 {
		var paths []string
		for p := range imported {
			paths = append(paths, p)
		}
		imp, err := lint.StdImporter(fset, paths...)
		if err != nil {
			t.Fatal(err)
		}
		conf.Importer = imp
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &lint.Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}

	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{analyzer})
	for _, d := range diags {
		w := wants[d.Pos.Filename][d.Pos.Line]
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s:%d does not match want %q: %s", d.Pos.Filename, d.Pos.Line, w.re, d.Message)
			continue
		}
		w.matched = true
	}
	for file, byLine := range wants {
		for line, w := range byLine {
			if !w.matched {
				t.Errorf("missing diagnostic: %s:%d want %q", file, line, w.re)
			}
		}
	}
}
