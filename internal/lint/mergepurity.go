package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MergePurityAnalyzer is the static twin of the shard-equivalence
// golden tests (TestSurveyMetricsShardMerge): a sharded survey is only
// correct if merging shard aggregates in any order produces identical
// results, so every type with a Merge method must be closed under the
// order-independence contract. Four rules per Merge method:
//
//  1. No call path from Merge to a nondeterminism source (wall clock,
//     global rand, map-order output) — checked forward over the
//     cross-package call graph, reported with the full chain.
//  2. No non-commutative float accumulation: float subtraction and
//     division make the result depend on merge order (floating-point
//     addition is already only approximately associative, which the
//     repo confines to dyadic-rational bucket sums; `-` and `/` are
//     where real divergence enters). Sums, products, and max/min via
//     comparison are the blessed forms.
//  3. No iteration-order dependence: inside a range over a map, a
//     plain assignment to state outside the loop, a string
//     concatenation, or an append of a range-dependent value all
//     record which key came last — keyed writes (m[k] += v) and
//     nested Merge calls are the order-independent forms.
//  4. Nested state must merge, not overwrite: assigning a field whose
//     type has its own Merge method discards the receiver's shard,
//     and copying a field straight from the argument
//     (recv.F = other.F) makes the last merge win — unless the copy
//     is dominated by a comparison (the max/min idiom).
//
// The waiver is the existing //repro:nondeterministic <reason> on the
// Merge declaration — order-dependence is nondeterminism under
// sharding, and the one directive keeps every sanctioned aggregate
// greppable the same way.
var MergePurityAnalyzer = &Analyzer{
	Name: "mergepurity",
	Doc: "require every Merge method to be order-independent: no " +
		"wall-clock or map-order inputs (checked over the call graph), " +
		"no non-commutative float forms, no last-write-wins field copies, " +
		"nested mergeable fields merged rather than overwritten",
	RunProject: runMergePurity,
}

func runMergePurity(pass *ProjectPass) {
	g := pass.Project.Graph
	for _, node := range g.Nodes {
		if node.Func == nil || node.Decl == nil || node.Decl.Recv == nil {
			continue
		}
		if node.Func.Name() != "Merge" {
			continue
		}
		if sanctioned(node) {
			continue // //repro:nondeterministic with a reason waives
		}
		checkMergeNondet(pass, node)
		checkMergeBody(pass, node)
	}
}

// checkMergeNondet walks forward from Merge over the call graph and
// reports the first reachable nondeterminism source with its chain
// (rule 1). Sanctioned nodes absorb, exactly as in detertaint.
func checkMergeNondet(pass *ProjectPass, merge *CallNode) {
	prev := map[*CallNode]*CallNode{merge: nil}
	queue := []*CallNode{merge}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if src, ok := directSource(n); ok {
			var parts []string
			for at := n; at != nil; at = prev[at] {
				parts = append([]string{at.Name()}, parts...)
			}
			parts = append(parts, src.desc)
			pass.Reportf(merge.Pkg.Fset, merge.Pos(),
				"%s reaches nondeterminism source %s: %s; a merge result must not depend on when or in what order shards fold, or annotate with %s <reason>",
				merge.Name(), src.desc, strings.Join(parts, " → "), NondetDirective)
			return
		}
		for _, e := range n.Out {
			switch e.Kind {
			case EdgeCall, EdgeDefer, EdgeClosure, EdgeDynamic:
			default:
				continue
			}
			callee := e.Callee
			if _, seen := prev[callee]; seen || sanctioned(callee) {
				continue
			}
			prev[callee] = n
			queue = append(queue, callee)
		}
	}
}

// mergeObjs resolves the receiver and parameter objects of a Merge
// declaration.
func mergeObjs(node *CallNode) (recv types.Object, params map[types.Object]bool) {
	params = make(map[types.Object]bool)
	info := node.Pkg.Info
	if f := node.Decl.Recv.List; len(f) > 0 && len(f[0].Names) > 0 {
		recv = info.Defs[f[0].Names[0]]
	}
	for _, f := range node.Decl.Type.Params.List {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return recv, params
}

// checkMergeBody enforces rules 2–4 syntactically over the Merge body
// (function literals share the scope and are walked inline).
func checkMergeBody(pass *ProjectPass, node *CallNode) {
	info := node.Pkg.Info
	recv, params := mergeObjs(node)

	// Rule 2: non-commutative float arithmetic.
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.SUB || n.Op == token.QUO) &&
				(isFloatType(info.TypeOf(n.X)) || isFloatType(info.TypeOf(n.Y))) {
				pass.Reportf(node.Pkg.Fset, n.Pos(),
					"non-commutative float arithmetic (%s) in %s: the result depends on merge order; restructure as sums, products, or max/min",
					n.Op, node.Name())
			}
		case *ast.AssignStmt:
			if (n.Tok == token.SUB_ASSIGN || n.Tok == token.QUO_ASSIGN) &&
				len(n.Lhs) == 1 && isFloatType(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(node.Pkg.Fset, n.Pos(),
					"non-commutative float accumulation (%s) in %s: the result depends on merge order; restructure as sums, products, or max/min",
					n.Tok, node.Name())
			}
		}
		return true
	})

	// Rule 3: iteration-order dependence inside map ranges.
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		rangeVars := rangeVarObjs(info, rs)
		checkMapRangeBody(pass, node, rs, rangeVars)
		return true
	})

	// Rule 4: overwrites of mergeable or argument-copied fields.
	checkFieldOverwrites(pass, node, recv, params, node.Body().List, false)
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rangeVarObjs returns the key/value loop variables of a range.
func rangeVarObjs(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// mentionsAny reports whether the expression uses any of the objects.
func mentionsAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	if e == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// rootIdent returns the base identifier of an lvalue chain
// (a.b.c → a, (*p).f → p), nil for indexed or otherwise keyed forms.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkMapRangeBody reports order-dependent writes inside one map
// range (rule 3): plain assignment or append to state declared outside
// the loop from a range-var-dependent value, and string concatenation.
func checkMapRangeBody(pass *ProjectPass, node *CallNode, rs *ast.RangeStmt, rangeVars map[types.Object]bool) {
	info := node.Pkg.Info
	loopLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if as.Tok == token.DEFINE {
			return true // loop-local temporaries are order-safe
		}
		for i, lhs := range as.Lhs {
			lhs = ast.Unparen(lhs)
			if _, keyed := lhs.(*ast.IndexExpr); keyed {
				continue // keyed writes commute across iteration orders
			}
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			obj := info.Uses[root]
			if obj == nil {
				obj = info.Defs[root]
			}
			if obj == nil || loopLocal(obj) {
				continue // blank or unresolvable lvalues hold no state
			}
			var rhs ast.Expr
			if i < len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			switch {
			case as.Tok == token.ASSIGN && isAppendOf(info, rhs, rangeVars):
				pass.Reportf(node.Pkg.Fset, as.Pos(),
					"map-iteration-order dependence in %s: appending range-dependent values records visit order; collect and sort keys first",
					node.Name())
			case as.Tok == token.ASSIGN && mentionsAny(info, rhs, rangeVars):
				pass.Reportf(node.Pkg.Fset, as.Pos(),
					"map-iteration-order dependence in %s: the last key visited wins this assignment; use a keyed write (m[k] op= v) or a commutative fold",
					node.Name())
			case as.Tok == token.ADD_ASSIGN && isStringType(info.TypeOf(lhs)):
				pass.Reportf(node.Pkg.Fset, as.Pos(),
					"map-iteration-order dependence in %s: string concatenation inside a map range records visit order; collect and sort keys first",
					node.Name())
			}
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isAppendOf reports whether e is append(..., x...) with a
// range-var-dependent appended value.
func isAppendOf(info *types.Info, e ast.Expr, rangeVars map[types.Object]bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	for _, arg := range call.Args[1:] {
		if mentionsAny(info, arg, rangeVars) {
			return true
		}
	}
	return false
}

// hasMergeMethod reports whether t (or *t) has a Merge method.
func hasMergeMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, base := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(base, true, nil, "Merge")
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// checkFieldOverwrites walks statements enforcing rule 4, carrying
// whether the current branch is dominated by a comparison that
// mentions the Merge argument (the max/min idiom).
func checkFieldOverwrites(pass *ProjectPass, node *CallNode, recv types.Object, params map[types.Object]bool, stmts []ast.Stmt, guarded bool) {
	info := node.Pkg.Info
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			g := guarded || mentionsAny(info, s.Cond, params)
			checkFieldOverwrites(pass, node, recv, params, s.Body.List, g)
			if s.Else != nil {
				checkFieldOverwrites(pass, node, recv, params, []ast.Stmt{s.Else}, g)
			}
		case *ast.BlockStmt:
			checkFieldOverwrites(pass, node, recv, params, s.List, guarded)
		case *ast.ForStmt:
			checkFieldOverwrites(pass, node, recv, params, s.Body.List, guarded)
		case *ast.RangeStmt:
			checkFieldOverwrites(pass, node, recv, params, s.Body.List, guarded)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkFieldOverwrites(pass, node, recv, params, cc.Body, guarded)
				}
			}
		case *ast.LabeledStmt:
			checkFieldOverwrites(pass, node, recv, params, []ast.Stmt{s.Stmt}, guarded)
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				continue
			}
			for i, lhs := range s.Lhs {
				lhs = ast.Unparen(lhs)
				var rhs ast.Expr
				if i < len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				checkOneOverwrite(pass, node, recv, params, lhs, rhs, guarded)
			}
		}
	}
}

// checkOneOverwrite judges a single lhs = rhs against rule 4.
func checkOneOverwrite(pass *ProjectPass, node *CallNode, recv types.Object, params map[types.Object]bool, lhs, rhs ast.Expr, guarded bool) {
	info := node.Pkg.Info

	// *recv = *param: wholesale overwrite of the receiver's shard.
	if star, ok := lhs.(*ast.StarExpr); ok {
		if root := rootIdent(star.X); root != nil && info.Uses[root] == recv {
			if rstar, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
				if rroot := rootIdent(rstar.X); rroot != nil && params[info.Uses[rroot]] {
					pass.Reportf(node.Pkg.Fset, lhs.Pos(),
						"%s overwrites the whole receiver with the argument: the merge keeps only the last shard; fold both sides instead", node.Name())
				}
			}
		}
		return
	}

	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	root := rootIdent(sel.X)
	if root == nil || recv == nil || info.Uses[root] != recv {
		return
	}

	// A field with its own Merge must be merged, not assigned.
	if hasMergeMethod(info.TypeOf(lhs)) {
		pass.Reportf(node.Pkg.Fset, lhs.Pos(),
			"%s assigns field %s whose type has its own Merge method: the receiver's shard of %s is discarded; call %s.Merge instead",
			node.Name(), sel.Sel.Name, sel.Sel.Name, sel.Sel.Name)
		return
	}

	// recv.F = param.F outside a comparison: last merge wins.
	if guarded {
		return
	}
	if rsel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok && rsel.Sel.Name == sel.Sel.Name {
		if rroot := rootIdent(rsel.X); rroot != nil && params[info.Uses[rroot]] {
			pass.Reportf(node.Pkg.Fset, lhs.Pos(),
				"%s copies field %s straight from the argument: the last shard merged wins; fold commutatively or guard with a comparison (max/min)",
				node.Name(), sel.Sel.Name)
		}
	}
}
