package lint_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

func diag(analyzer, file, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: 10, Column: 2},
		Message:  msg,
	}
}

// TestBaselineApply pins the matching contract: analyzer + file path
// suffix + exact message, no line numbers. Unmatched diagnostics are
// fresh (they fail the run); unmatched entries are stale (the finding
// was fixed and the line should be deleted).
func TestBaselineApply(t *testing.T) {
	b := &lint.Baseline{Entries: []lint.BaselineEntry{
		{Analyzer: "goleak", File: "internal/x/x.go", Message: "msg one"},
		{Analyzer: "lockorder", File: "internal/y/y.go", Message: "gone"},
	}}
	diags := []lint.Diagnostic{
		// Tolerated: suffix-matches the entry even from an absolute path.
		diag("goleak", "/build/repo/internal/x/x.go", "msg one"),
		// Fresh: same entry, different message.
		diag("goleak", "/build/repo/internal/x/x.go", "msg two"),
		// Fresh: same message, different analyzer.
		diag("detertaint", "/build/repo/internal/x/x.go", "msg one"),
		// Fresh: suffix must align on a path segment.
		diag("goleak", "/build/notinternal/x/x.go", "msg one"),
	}
	fresh, stale := b.Apply(diags)
	if len(fresh) != 3 {
		t.Errorf("fresh = %d, want 3: %v", len(fresh), fresh)
	}
	if len(stale) != 1 || stale[0].Message != "gone" {
		t.Errorf("stale = %v, want the lockorder entry", stale)
	}
}

// TestBaselineRoundTrip covers read/write plus the missing-file case
// (an absent baseline is empty, so fresh checkouts ratchet from zero).
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	empty, err := lint.ReadBaseline(path)
	if err != nil {
		t.Fatalf("missing baseline should read as empty: %v", err)
	}
	if len(empty.Entries) != 0 {
		t.Fatalf("missing baseline has %d entries", len(empty.Entries))
	}

	in := lint.FromDiagnostics([]lint.Diagnostic{
		diag("goleak", "b.go", "zz"),
		diag("goleak", "a.go", "aa"),
	}, "adopting the analyzer")
	if err := lint.WriteBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := lint.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(out.Entries))
	}
	// WriteBaseline sorts by file for stable diffs.
	if out.Entries[0].File != "a.go" || out.Entries[1].File != "b.go" {
		t.Errorf("entries not sorted: %+v", out.Entries)
	}
	if out.Entries[0].Reason != "adopting the analyzer" {
		t.Errorf("reason lost: %+v", out.Entries[0])
	}
}
