// Package lint is a small static-analysis framework for this repository,
// built entirely on the standard library (go/parser, go/ast, go/types).
// It exists because the reproduction's scientific claims rest on
// invariants the Go compiler cannot check:
//
//   - the synthetic population and analysis layers must be bit-for-bit
//     deterministic, or the Table 2 / Figure 1 calibration stops being
//     reproducible (analyzers: determinism);
//   - the hand-rolled DNS wire codec must never index past buffer
//     bounds on adversarial input — the parser-robustness failure class
//     that NSEC3 CPU-exhaustion attacks exploit at measurement scale
//     (analyzer: wiresafety);
//   - errors, lock copies, and magic protocol numbers must not slip in
//     as the scanner grows toward production scale (analyzers:
//     errdiscard, copylock, rfcconst).
//
// The framework intentionally mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) without
// depending on it, honoring the repository's stdlib-only constraint.
// The cmd/reprolint driver loads packages and runs Analyzers().
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Message describes the violation and, where possible, the fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's syntax trees, already filtered down to the
	// files in the analyzer's scope.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and object tables.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package, or — when
// RunProject is set — over the whole loaded package set at once.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Packages restricts the analyzer to packages whose import path ends
	// with one of these suffixes (segment-aligned). Empty means every
	// package.
	Packages []string
	// ExtraFiles admits individual files (path suffix match) that live
	// in packages outside the Packages scope.
	ExtraFiles []string
	// ExemptFiles are file path suffixes the analyzer never inspects,
	// even inside an in-scope package.
	ExemptFiles []string
	// Run inspects pass.Files and calls pass.Reportf for violations.
	// Nil for project-wide analyzers.
	Run func(pass *Pass)
	// RunProject, when set, runs once over the whole package set with
	// the cross-package call graph instead of per package. Project
	// analyzers scope themselves (Packages/ExtraFiles/ExemptFiles do
	// not apply).
	RunProject func(pass *ProjectPass)
}

// Project is the whole loaded package set plus its call graph — the
// view interprocedural analyzers run on.
type Project struct {
	// Packages are the loaded packages, sharing one token.FileSet.
	Packages []*Package
	// Graph is the static cross-package call graph.
	Graph *CallGraph
}

// NewProject builds the interprocedural view of pkgs.
func NewProject(pkgs []*Package) *Project {
	return &Project{Packages: pkgs, Graph: BuildCallGraph(pkgs)}
}

// ProjectPass carries one project analyzer's run.
type ProjectPass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Project is the loaded package set and call graph.
	Project *Project

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos, located through fset (use the
// owning package's or node's FileSet).
func (p *ProjectPass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// pathSuffixMatch reports whether path ends with suffix on a path
// segment boundary ("internal/population" matches
// "repro/internal/population" but not "x/notinternal/population").
func pathSuffixMatch(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// inScope reports whether the analyzer applies to the file named
// filename inside the package with import path pkgPath.
func (a *Analyzer) inScope(pkgPath, filename string) bool {
	for _, ex := range a.ExemptFiles {
		if pathSuffixMatch(filename, ex) {
			return false
		}
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if pathSuffixMatch(pkgPath, p) {
			return true
		}
	}
	for _, f := range a.ExtraFiles {
		if pathSuffixMatch(filename, f) {
			return true
		}
	}
	return false
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the parsed source files (tests excluded).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
}

// Analyzers returns the full project suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		WireSafetyAnalyzer,
		ErrDiscardAnalyzer,
		CopyLockAnalyzer,
		RFCConstAnalyzer,
		DeterTaintAnalyzer,
		GoLeakAnalyzer,
		LockOrderAnalyzer,
		CtxPropAnalyzer,
		WireTaintAnalyzer,
		MergePurityAnalyzer,
		HotPathAllocAnalyzer,
		BufAliasAnalyzer,
		PoolSafeAnalyzer,
	}
}

// Run applies each analyzer to each package within its scope and
// returns every diagnostic, sorted by position then analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var project *Project
	for _, a := range analyzers {
		if a.RunProject != nil && project == nil {
			project = NewProject(pkgs)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			var files []*ast.File
			for _, f := range pkg.Files {
				name := pkg.Fset.Position(f.Package).Filename
				if a.inScope(pkg.Path, name) {
					files = append(files, f)
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProject == nil {
			continue
		}
		a.RunProject(&ProjectPass{Analyzer: a, Project: project, diags: &diags})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, function-typed variables, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// exprString renders an expression in canonical source form, used as a
// syntactic identity key by several analyzers.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
