// Package buffix is the bufalias golden fixture: aliases of
// caller-provided, pooled, and loop-read buffers escaping their reuse
// window, each with a compliant twin that stays silent.
package buffix

import (
	"net"
	"sync"
)

var bufPool = sync.Pool{New: func() any { b := make([]byte, 1024); return &b }}

// Keep retains frames across calls.
type Keep struct {
	last []byte
}

// Stash stores a subslice of the caller's frame past the call.
func (k *Keep) Stash(frame []byte, n int) {
	k.last = frame[:n] // want `a subslice of the caller-provided buffer frame is stored in a field of k`
}

// Adopt stores the whole parameter — the constructor idiom stays
// quiet: handing over a complete buffer is an ownership transfer, not
// an alias.
func (k *Keep) Adopt(frame []byte) {
	k.last = frame
}

// Window returns an alias into its caller's buffer.
func Window(b []byte, n int) []byte {
	return b[:n] // want `a subslice of the caller-provided buffer b is returned`
}

// Copied is the compliant twin: the spread append copies the bytes
// into fresh memory.
func Copied(b []byte, n int) []byte {
	return append([]byte(nil), b[:n]...)
}

// Lease returns memory the deferred Put recycles.
func Lease(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	return (*bp)[:n] // want `a subslice of the pooled buffer bp is returned`
}

var lastFrame []byte

// Record publishes the caller's buffer globally.
func Record(frame []byte, n int) {
	lastFrame = frame[:n] // want `a subslice of the caller-provided buffer frame is stored in package-level variable lastFrame`
}

// Publish sends an alias of the caller's buffer to another goroutine.
func Publish(ch chan []byte, frame []byte, n int) {
	ch <- frame[:n] // want `a subslice of the caller-provided buffer frame is sent on a channel`
}

// Pump reads frames into one buffer and leaks aliases across
// iterations: both escapes race with the next Read.
func Pump(conn net.Conn, ch chan []byte) ([][]byte, error) {
	buf := make([]byte, 512)
	var frames [][]byte
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return frames, err
		}
		ch <- buf[:n]                    // want `read buffer buf is refilled every iteration of this loop but is sent on a channel`
		frames = append(frames, buf[:n]) // want `read buffer buf is refilled every iteration of this loop but is retained by a growing slice`
	}
}

// PumpCopy is the compliant twin: each frame is copied before it
// leaves the iteration.
func PumpCopy(conn net.Conn, ch chan []byte) error {
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return err
		}
		frame := append([]byte(nil), buf[:n]...)
		ch <- frame
	}
}

// Fan hands the shared read buffer to a goroutine each packet.
func Fan(pc net.PacketConn, handle func([]byte)) {
	buf := make([]byte, 512)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		go handle(buf[:n]) // want `read buffer buf is refilled every iteration of this loop but escapes to a goroutine`
	}
}

// Trusted aliases by documented contract; the waiver silences the
// whole function.
//
//repro:allocok fixture: callers treat the result as valid only until their next call
func Trusted(b []byte, n int) []byte {
	return b[:n]
}
