// Package mergefix is the mergepurity fixture: Merge methods in every
// blessed and forbidden shape — commutative folds, wall-clock reaches
// (direct and through a helper), non-commutative float forms,
// map-iteration-order dependence, nested-aggregate overwrites, the
// guarded max idiom, and a sanctioned nondeterministic merge.
package mergefix

import "time"

// Sums is the blessed shape: commutative folds only.
type Sums struct {
	N     int64
	Total float64
}

// Merge folds another shard in; addition commutes.
func (s *Sums) Merge(o *Sums) {
	s.N += o.N
	s.Total += o.Total
}

// Stamped records when the merge ran.
type Stamped struct {
	N    int64
	When time.Time
}

// Merge stamps the fold with the wall clock.
func (s *Stamped) Merge(o *Stamped) { // want `\(\*Stamped\)\.Merge reaches nondeterminism source time\.Now: \(\*Stamped\)\.Merge → time\.Now`
	s.N += o.N
	s.When = time.Now()
}

// Lazy reaches the clock through a helper.
type Lazy struct{ N int64 }

// Merge delegates to touch, which reads the clock.
func (l *Lazy) Merge(o *Lazy) { // want `\(\*Lazy\)\.Merge reaches nondeterminism source time\.Now: \(\*Lazy\)\.Merge → mergefix\.touch → time\.Now`
	l.N += o.N
	touch()
}

func touch() {
	_ = time.Now()
}

// Avg keeps a running mean.
type Avg struct {
	Mean  float64
	Count float64
}

// Merge recomputes the mean with a division.
func (a *Avg) Merge(o *Avg) {
	total := a.Mean*a.Count + o.Mean*o.Count
	a.Count += o.Count
	a.Mean = total / a.Count // want `non-commutative float arithmetic \(/\) in \(\*Avg\)\.Merge`
}

// Drift accumulates a correction by subtraction.
type Drift struct{ Err float64 }

// Merge subtracts the other shard's error.
func (d *Drift) Merge(o *Drift) {
	d.Err -= o.Err // want `non-commutative float accumulation \(-=\) in \(\*Drift\)\.Merge`
}

// Tot accumulates dyadic-rational bucket sums: float addition is the
// repo's blessed accumulation form.
type Tot struct{ Sum float64 }

// Merge adds.
func (t *Tot) Merge(o *Tot) {
	t.Sum += o.Sum
}

// Last tracks per-key counts plus the most recent key seen.
type Last struct {
	Counts  map[string]int64
	LastKey string
}

// Merge folds counts with keyed writes (order-safe) but records
// whichever key the range visits last (order-dependent).
func (l *Last) Merge(o *Last) {
	for k, v := range o.Counts {
		l.Counts[k] += v
		l.LastKey = k // want `map-iteration-order dependence in \(\*Last\)\.Merge: the last key visited wins`
	}
}

// Names flattens keys into one string.
type Names struct{ Joined string }

// Merge concatenates in visit order.
func (n *Names) Merge(o *Names, keys map[string]bool) {
	for k := range keys {
		n.Joined += k // want `map-iteration-order dependence in \(\*Names\)\.Merge: string concatenation inside a map range records visit order`
	}
}

// Keys collects map keys.
type Keys struct{ All []string }

// Merge appends in visit order.
func (s *Keys) Merge(o map[string]int) {
	for k := range o {
		s.All = append(s.All, k) // want `map-iteration-order dependence in \(\*Keys\)\.Merge: appending range-dependent values records visit order`
	}
}

// Outer nests a mergeable aggregate.
type Outer struct {
	Sub  Sums
	Hits int64
}

// Merge overwrites the nested aggregate instead of merging it.
func (u *Outer) Merge(o *Outer) {
	u.Hits += o.Hits
	u.Sub = o.Sub // want `\(\*Outer\)\.Merge assigns field Sub whose type has its own Merge method`
}

// In nests the same aggregate and merges it properly.
type In struct {
	Sub  Sums
	Hits int64
}

// Merge folds the nested aggregate through its own Merge.
func (i *In) Merge(o *In) {
	i.Hits += o.Hits
	i.Sub.Merge(&o.Sub)
}

// Gauge keeps a maximum.
type Gauge struct{ Max int64 }

// Merge keeps the larger shard: the copy is dominated by a comparison
// that mentions the argument, the blessed max idiom.
func (g *Gauge) Merge(o *Gauge) {
	if o.Max > g.Max {
		g.Max = o.Max
	}
}

// Clob copies a field straight from the argument.
type Clob struct{ Rate int64 }

// Merge lets the last shard win.
func (c *Clob) Merge(o *Clob) {
	c.Rate = o.Rate // want `\(\*Clob\)\.Merge copies field Rate straight from the argument`
}

// Whole replaces itself with the argument.
type Whole struct{ N int64 }

// Merge keeps only the last shard.
func (w *Whole) Merge(o *Whole) {
	*w = *o // want `\(\*Whole\)\.Merge overwrites the whole receiver with the argument`
}

// Sampled keeps an exemplar whose choice is presentation-only.
type Sampled struct{ Pick int64 }

// Merge keeps whichever shard arrives last, by design.
//
//repro:nondeterministic exemplar choice is presentation-only, never aggregated further
func (s *Sampled) Merge(o *Sampled) {
	s.Pick = o.Pick
}
