// Package errdiscard is a golden-file fixture for the errdiscard
// analyzer (which runs on every package, so the import path is
// irrelevant).
package errdiscard

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func bareCall() {
	mayFail() // want `result of errdiscard\.mayFail includes an error that is dropped`
}

func bareMethod(f *os.File) {
	f.Close() // want `result of Close includes an error that is dropped`
}

func blankNoComment() {
	_ = mayFail() // want `error discarded with _ = and no justification comment`
}

func blankBoth() {
	_, _ = twoResults() // want `error discarded with _ = and no justification comment`
}

// blankJustifiedSameLine is a near miss: the same-line comment waives it.
func blankJustifiedSameLine() {
	_ = mayFail() // fixture: failure here is unobservable
}

// blankJustifiedAbove is a near miss: the preceding-line comment waives it.
func blankJustifiedAbove() {
	// fixture: failure here is unobservable
	_ = mayFail()
}

// keptValue is a near miss: x, _ keeps a value — a deliberate, visible
// choice, not a silent drop.
func keptValue() int {
	x, _ := twoResults()
	return x
}

// checked is a near miss: the error is handled.
func checked() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// printFamily is a near miss: fmt print errors are vestigial.
func printFamily() {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "world\n")
}

// builder is a near miss: strings.Builder writes never fail.
func builder() string {
	var sb strings.Builder
	sb.WriteString("x")
	sb.WriteByte('y')
	return sb.String()
}

func deferredClose(f *os.File) {
	defer f.Close() // want `error returned by Close is dropped by the defer statement`
}

func spawnedClose(f *os.File) {
	go f.Close() // want `error returned by Close is dropped by the go statement`
}

// deferredJustified is a near miss: the same-line comment waives it.
func deferredJustified(f *os.File) {
	defer f.Close() // fixture: read-only handle, close error is moot
}

// deferredJustifiedAbove is a near miss: the preceding-line comment
// waives it.
func deferredJustifiedAbove(f *os.File) {
	// fixture: read-only handle, close error is moot
	defer f.Close()
}

// deferredWrapper is a near miss for the defer statement itself, but
// the literal body is still walked: the uncommented discard inside is
// reported.
func deferredWrapper(f *os.File) {
	defer func() {
		_ = f.Close() // want `error discarded with _ = and no justification comment`
	}()
}

// spawnedPrint is a near miss: fmt print errors stay vestigial under go.
func spawnedPrint() {
	go fmt.Println("hello")
}
