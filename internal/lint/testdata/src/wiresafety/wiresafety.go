// Package wiresafety is a golden-file fixture, type-checked under the
// fake import path "repro/internal/dnswire" so the wiresafety analyzer
// treats it as in scope.
package wiresafety

type cursor struct {
	msg []byte
	off int
	end int
}

func unguardedIndex(b []byte) byte {
	return b[0] // want `index of wire buffer b is not dominated by a len\(b\) bounds guard`
}

func unguardedSlice(b []byte) []byte {
	return b[2:] // want `slice of wire buffer b is not dominated by a len\(b\) bounds guard`
}

// guardedIndex is a near miss: the access is inside a len guard.
func guardedIndex(b []byte) byte {
	if len(b) > 0 {
		return b[0]
	}
	return 0
}

// earlyExitGuard is a near miss: the codec idiom — a guard whose body
// returns dominates the rest of the block.
func earlyExitGuard(b []byte) byte {
	if len(b) < 2 {
		return 0
	}
	return b[1]
}

// wrongBuffer still leaks: the guard covers a, the access reads b.
func wrongBuffer(a, b []byte) byte {
	if len(a) < 2 {
		return 0
	}
	return b[1] // want `index of wire buffer b is not dominated by a len\(b\) bounds guard`
}

// receiverGuard is a near miss: decoder-cursor fields compared in the
// condition guard reads through the same receiver.
func (c *cursor) receiverGuard() byte {
	if c.off >= c.end {
		return 0
	}
	return c.msg[c.off]
}

func (c *cursor) unguardedReceiver() byte {
	return c.msg[c.off] // want `index of wire buffer c\.msg is not dominated by a len\(c\.msg\) bounds guard`
}

// lenDerived is a near miss: the index is pinned to len(b) by a
// visible assignment.
func lenDerived(b []byte) []byte {
	off := len(b)
	b = append(b, 0, 0)
	b[off] = 1
	return b
}

// rangeOver is a near miss: ranging over b bounds the index.
func rangeOver(b []byte) int {
	n := 0
	for i := range b {
		n += int(b[i])
	}
	return n
}

// resetSlice is a near miss: b[:0] cannot be out of bounds.
func resetSlice(b []byte) []byte {
	return b[:0]
}

// boundedSlice is a near miss: bounds mentioning len(b) are safe.
func boundedSlice(b []byte) []byte {
	return b[:len(b)/2]
}

// stringIndex is a near miss: strings are out of scope (the presentation
// parser's idiom), only []byte wire buffers are checked.
func stringIndex(s string) byte {
	return s[0]
}
