// Package hotfix is the hotpathalloc golden fixture: annotated roots
// whose reachable chains allocate, one compliant twin per allocation
// kind, waiver absorption, and directive hygiene in both directions.
package hotfix

import "fmt"

// Serve is an annotated root; encode is hot through it.
//
//repro:hotpath fixture: the serving loop must not allocate
func Serve(dst []byte, n int) []byte {
	return encode(dst, n)
}

// encode allocates a scratch buffer instead of reusing dst.
func encode(dst []byte, n int) []byte {
	tmp := make([]byte, n) // want `hot path must not allocate: a make call in hotfix\.Serve → hotfix\.encode`
	copy(tmp, dst)
	return append(dst, byte(n))
}

// CleanServe is the compliant twin: stack scratch plus appends into
// caller-owned memory only.
//
//repro:hotpath fixture: the compliant twin stays silent
func CleanServe(dst, src []byte) []byte {
	var scratch [8]byte
	buf := scratch[:0]
	buf = append(buf, src...)
	return append(dst, buf...)
}

// Log drags fmt onto the hot path.
//
//repro:hotpath fixture: logging crept into the serving loop
func Log(v int) {
	fmt.Println(v) // want `hot path must not allocate: a fmt\.Println call in hotfix\.Log`
}

func take(v any) {}

// Box passes a concrete value to an interface parameter.
//
//repro:hotpath fixture: dispatch must not box its argument
func Box(n int) {
	take(n) // want `interface boxing of a non-pointer int argument`
}

// Str converts wire bytes to a string per call.
//
//repro:hotpath fixture: conversions copy
func Str(b []byte) string {
	return string(b) // want `a \[\]byte/\[\]rune-to-string conversion`
}

// Count writes a map per query.
//
//repro:hotpath fixture: per-query map writes rehash
func Count(m map[string]int, k string) {
	m[k]++ // want `a map write`
}

// Each builds a capturing closure per call.
//
//repro:hotpath fixture: callbacks must not capture
func Each(n int) {
	f := func() int { return n } // want `a variable-capturing closure`
	_ = f()
}

// Read calls into a waived helper: the waiver absorbs, so fill's map
// literal reports nothing.
//
//repro:hotpath fixture: waived callees absorb
func Read(dst []byte) []byte {
	return fill(dst)
}

// fill pays a documented one-time cost.
//
//repro:allocok fixture: the table is built once and memoized by the caller
func fill(dst []byte) []byte {
	table := map[int]int{1: 1}
	return append(dst, byte(len(table)))
}

//repro:hotpath
func BareRoot() {} // want `//repro:hotpath directive without a reason`

//repro:allocok
func BareWaiver() { // want `//repro:allocok directive without a reason`
	_ = make([]byte, 1)
}

// Conflicted claims to be both a root and a waiver.
//
//repro:hotpath fixture: contradictory root
//repro:allocok fixture: cannot also waive itself
func Conflicted() { // want `//repro:hotpath and //repro:allocok on the same declaration contradict each other`
	_ = make([]byte, 8)
}

// Idle carries a waiver that silences nothing.
//
//repro:allocok fixture: stale — nothing here allocates
func Idle(n int) int { // want `//repro:allocok on hotfix\.Idle waives nothing`
	return n + 1
}
