// Package scanlib is the unscoped half of the detertaint fixture: the
// infrastructure layer the scoped package reaches nondeterminism
// through. Nothing here is reported for taint (the package is outside
// the deterministic roots); only the directive-hygiene rule applies.
package scanlib

import "time"

// Clock is an unannotated nondeterminism source: callers in scoped
// packages are tainted through it.
func Clock() time.Time { return time.Now() }

// Sanctioned is an annotated root: taint stops here, so scoped callers
// stay clean.
//
//repro:nondeterministic fixture: feeds telemetry only, never report data
func Sanctioned() time.Time { return time.Now() }

// BareDirective carries the directive without a reason — a finding in
// its own right, wherever the function lives.
//
//repro:nondeterministic
func BareDirective() time.Time { return time.Now() } // want `directive without a reason`

// Ticker is the interface-dispatch half of the fixture.
type Ticker interface{ Tick() time.Time }

// SysTicker reads the clock on dispatch.
type SysTicker struct{}

// Tick implements Ticker from the wall clock.
func (SysTicker) Tick() time.Time { return time.Now() }
