// Package core is the scoped half of the detertaint fixture: its fake
// import path ends in internal/core, so any path from here to a
// nondeterminism source must be reported with the full call chain.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/scanlib"
)

// Survey reaches the wall clock through the other package: reported
// here, with the cross-package chain in the message.
func Survey() time.Time { // want `core\.Survey reaches nondeterminism source time\.Now: core\.Survey → scanlib\.Clock → time\.Now`
	return scanlib.Clock()
}

// Outer is a near miss: taint is reported at the innermost scoped
// function only, so the outer caller stays silent.
func Outer() time.Time { return Inner() }

// Inner is that innermost function.
func Inner() time.Time { // want `core\.Inner reaches nondeterminism source time\.Now`
	return scanlib.Clock()
}

// ViaSanctioned is a near miss: the annotated root absorbs the taint.
func ViaSanctioned() time.Time { return scanlib.Sanctioned() }

// Spawn reaches the clock from a goroutine: the closure is its own
// graph node, and the report lands on the enclosing declared function.
func Spawn(out chan<- time.Time) { // want `core\.Spawn reaches nondeterminism source time\.Now`
	go func() { out <- scanlib.Clock() }()
}

// Dispatch reaches the clock through interface dispatch: the graph
// fans the call out to every satisfying concrete type.
func Dispatch(tk scanlib.Ticker) time.Time { // want `core\.Dispatch reaches nondeterminism source time\.Now`
	return tk.Tick()
}

// Render is a direct seed: output written under map iteration order.
func Render(w io.Writer, m map[string]int) { // want `core\.Render reaches nondeterminism source map-iteration-order output`
	for k := range m {
		fmt.Fprintln(w, k)
	}
}

// Pure is a near miss: no path to any source.
func Pure(a, b int) int { return a + b }
