// Package goleak is a golden-file fixture for the
// goroutine-termination analyzer (which scopes itself over the whole
// project, so the import path is irrelevant).
package goleak

import (
	"context"
	"os"
)

func work() {}

func tired() bool { return true }

// spinForever leaks: the spawned loop has no way out.
func spinForever() {
	go func() {
		for { // want `unconditional loop in goroutine spawned at`
			work()
		}
	}()
}

// loopWithSelectReturn is a near miss: the shutdown case returns (the
// netsim accept-loop shape).
func loopWithSelectReturn(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// bareSend leaks the goroutine when the receiver goes away.
func bareSend(ch chan int) {
	go func() {
		ch <- 1 // want `blocking channel send in goroutine spawned at`
	}()
}

// guardedSend is a near miss: the send has a cancellation case.
func guardedSend(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// spawnNamed spawns a declared function: the body is resolved through
// the call graph, not just literal syntax.
func spawnNamed(ch chan int) {
	go pump(ch)
}

// pump is flagged at its send because a goroutine runs it bare.
func pump(ch chan int) {
	ch <- 2 // want `blocking channel send in goroutine spawned at`
}

// sequentialSend is a near miss: pump's send is only a finding where a
// goroutine runs it; calling it synchronously reports nothing here.
func sequentialSend(ch chan int) {
	pump(ch)
}

// boundedLoop is a near miss: a loop condition is assumed reachable.
func boundedLoop() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// exitingLoop is a near miss: os.Exit leaves the loop.
func exitingLoop() {
	go func() {
		for {
			if tired() {
				os.Exit(0)
			}
		}
	}()
}

// breakOut is a near miss: the unlabeled break targets this loop.
func breakOut() {
	go func() {
		for {
			if tired() {
				break
			}
		}
	}()
}

// nestedBreak still leaks: the break targets the switch, not the loop.
func nestedBreak() {
	go func() {
		for { // want `unconditional loop in goroutine spawned at`
			switch {
			case tired():
				break
			}
		}
	}()
}

// labeledBreakOut is a near miss: the labeled break targets the
// spawned loop itself from inside a nested switch.
func labeledBreakOut() {
	go func() {
	drain:
		for {
			switch {
			case tired():
				break drain
			}
		}
	}()
}

// flight models the lazy-signing singleflight (authserver): waiters
// block receiving from a channel the signer unconditionally closes.
type flight struct{ done chan struct{} }

// singleflightWaiters is a near miss: unlike a bare send, a bare
// receive on a singleflight channel completes — close(done) wakes
// every waiter at once, so the goroutines terminate.
func singleflightWaiters(fl *flight) {
	for i := 0; i < 4; i++ {
		go func() {
			<-fl.done
			work()
		}()
	}
}

// signer closes the flight after doing the work; waiters spawned by
// singleflightWaiters unblock here.
func signer(fl *flight) {
	work()
	close(fl.done)
}
