// Package poolfix is the poolsafe golden fixture: the three pool
// crimes — a path that forgets its Put, a double Put, a use after Put,
// and the per-iteration leak — next to the disciplined twins that must
// stay silent.
package poolfix

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 512); return &b }}

// Leak drops the buffer on its early-return path.
func Leak(cond bool) {
	bp := pool.Get().(*[]byte) // want `sync\.Pool Get result bp is not returned to the pool on every path`
	if cond {
		return
	}
	pool.Put(bp)
}

// DoublePut returns the same buffer twice; the pool may hand it to two
// goroutines at once.
func DoublePut() {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	pool.Put(bp) // want `bp is Put back to its sync\.Pool twice`
}

// UseAfterPut reads a buffer the pool already owns again.
func UseAfterPut() byte {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	return (*bp)[0] // want `bp is used after being Put back to its sync\.Pool`
}

// LoopLeak takes a buffer every iteration and never gives it back.
func LoopLeak(jobs []int) {
	for range jobs {
		bp := pool.Get().(*[]byte) // want `sync\.Pool Get result bp leaks once per loop iteration`
		_ = bp
	}
}

// SkipLeak loses the buffer whenever a job is skipped.
func SkipLeak(jobs []int) {
	for _, j := range jobs {
		bp := pool.Get().(*[]byte) // want `sync\.Pool Get result bp leaks once per loop iteration`
		if j == 0 {
			continue
		}
		pool.Put(bp)
	}
}

// DeferPut is the canonical discipline: the deferred Put satisfies
// every exit path, and uses before it are legal.
func DeferPut() int {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	return len(*bp)
}

// Handoff transfers ownership to a goroutine; the Put obligation moves
// with it.
func Handoff(work func(*[]byte)) {
	bp := pool.Get().(*[]byte)
	go work(bp)
}

// ErrPath puts explicitly on both branches.
func ErrPath(cond bool) {
	bp := pool.Get().(*[]byte)
	if cond {
		pool.Put(bp)
		return
	}
	pool.Put(bp)
}

// LoopTransfer resolves each iteration's obligation by handing the
// buffer off before the iteration ends.
func LoopTransfer(jobs []int, sink chan *[]byte) {
	for range jobs {
		bp := pool.Get().(*[]byte)
		sink <- bp
	}
}
