// Package copylock is a golden-file fixture for the copylock analyzer
// (which runs on every package).
package copylock

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

type nested struct {
	reg registry
}

type plain struct {
	items map[string]int
}

func byValueParam(r registry) int { // want `by-value parameter of type .*registry copies field mu \(sync\.Mutex\)`
	return len(r.items)
}

func byValueNested(n nested) int { // want `by-value parameter of type .*nested copies field reg`
	return len(n.reg.items)
}

func byValueResult() (r registry) { // want `by-value result of type .*registry copies field mu`
	return
}

func (r registry) byValueRecv() int { // want `by-value receiver of type .*registry copies field mu`
	return len(r.items)
}

// pointerParam is a near miss: pointers do not copy the lock.
func pointerParam(r *registry) int {
	return len(r.items)
}

// plainParam is a near miss: no lock anywhere in the type.
func plainParam(p plain) int {
	return len(p.items)
}

func assignCopy(src *registry) {
	dst := *src // want `assignment copies field mu \(sync\.Mutex\)`
	_ = dst
}

func fieldCopy(n *nested) {
	r := n.reg // want `assignment copies field mu \(sync\.Mutex\)`
	_ = r
}

// literalInit is a near miss: a composite literal constructs a fresh
// value, it does not copy a live lock (and the constructor hands it
// out by pointer).
func literalInit() *registry {
	r := registry{items: map[string]int{}}
	return &r
}

// waitGroupCopy catches the third lock type.
func waitGroupCopy(wg *sync.WaitGroup) {
	local := *wg // want `assignment copies sync\.WaitGroup`
	_ = local
}

func rangeCopy(rs []registry) int {
	n := 0
	for _, r := range rs { // want `range value copies field mu \(sync\.Mutex\)`
		n += len(r.items)
	}
	return n
}

// rangeIndex is a near miss: ranging over indices copies nothing.
func rangeIndex(rs []registry) int {
	n := 0
	for i := range rs {
		n += len(rs[i].items)
	}
	return n
}
