// Package lockorder is a golden-file fixture for the intra-type
// lock-discipline analyzer (which scopes itself over the whole
// project, so the import path is irrelevant).
package lockorder

import "sync"

// Counter guards its state with a non-reentrant mutex.
type Counter struct {
	mu     sync.Mutex
	n      int
	closed bool
}

func (c *Counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// BumpTwice self-deadlocks: bump re-acquires c.mu while it is held
// (the deferred unlock has not run at the call point).
func (c *Counter) BumpTwice() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want `calling bump while holding c\.mu self-deadlocks`
}

// Transitive self-deadlocks through a lock-free intermediary: the
// acquire sets close over same-receiver calls.
func (c *Counter) Transitive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.indirect() // want `calling indirect while holding c\.mu self-deadlocks`
}

func (c *Counter) indirect() { c.bump() }

// EarlyReturn leaks the lock on the early path: no deferred unlock and
// no unlock before the return.
func (c *Counter) EarlyReturn(x bool) int {
	c.mu.Lock()
	if x {
		return 0 // want `return while holding c\.mu with no deferred Unlock`
	}
	c.mu.Unlock()
	return c.n
}

// Guarded is a near miss: the guard clause unlocks before returning
// (the netsim Server.Close shape), and after the branch the analyzer
// treats the lock as possibly released rather than guessing.
func (c *Counter) Guarded() int {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// DeferredReturns is a near miss: the deferred unlock covers every
// return path.
func (c *Counter) DeferredReturns(x bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x {
		return 0
	}
	return c.n
}

// Handoff is a near miss: the sibling call runs after the unlock.
func (c *Counter) Handoff() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.bump()
}

// SpawnedBump is a near miss: a literal may run on another goroutine,
// where re-acquisition is contention, not self-deadlock.
func (c *Counter) SpawnedBump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() { c.bump() }()
}

// Table guards reads with an RWMutex.
type Table struct {
	rw sync.RWMutex
	m  map[string]int
}

func (t *Table) set(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

func (t *Table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// GetOrInit self-deadlocks: set needs the write lock while the read
// lock is held, and RWMutex writers wait for readers.
func (t *Table) GetOrInit(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	if _, ok := t.m[k]; !ok {
		t.set(k, 0) // want `calling set while holding t\.rw self-deadlocks`
	}
	return t.m[k]
}

// DoubleRead is a near miss: RLock after RLock is legal (if
// inadvisable), so only a write re-acquisition under a read lock
// reports.
func (t *Table) DoubleRead(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.get(k)
}

// Flight is the lazy-signing singleflight shape (authserver
// materialize): the mutex guards only the done-channel handoff; the
// expensive work and the sibling install call run unlocked.
type Flight struct {
	mu   sync.Mutex
	done chan struct{}
	val  int
}

func (f *Flight) install(v int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.val = v
}

// Materialize is a near miss on both rules: the explicit Unlock runs
// before the sibling install call and before every return, in both the
// signer and the waiter arm.
func (f *Flight) Materialize() int {
	f.mu.Lock()
	if f.done == nil {
		f.done = make(chan struct{})
		f.mu.Unlock()
		f.install(42)
		close(f.done)
		return f.val
	}
	done := f.done
	f.mu.Unlock()
	<-done
	return f.val
}

// MaterializeHeld is the bug the shape above avoids: the sibling
// install call runs while the flight lock is held.
func (f *Flight) MaterializeHeld() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.install(42) // want `calling install while holding f\.mu self-deadlocks`
	return f.val
}
