// Package wire is the codec half of the wiretaint fixture: every
// []byte parameter here is untrusted by definition (the fixture's fake
// import path ends in internal/dnswire). It exercises the sink kinds,
// the narrow-type and guard sanitizers, cross-function propagation,
// and the propagate-through-waiver rule.
package wire

import "encoding/binary"

// Decode sizes an allocation straight from a 32-bit wire field.
func Decode(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	out := make([]byte, n) // want `make sized from untrusted wire bytes without a dominating bounds guard: untrusted wire bytes → wire\.Decode`
	copy(out, b[4:])
	return out
}

// DecodeSafe guards the decoded length against the buffer before use.
func DecodeSafe(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	if n < 0 || n > len(b)-4 {
		return nil
	}
	out := make([]byte, n)
	copy(out, b[4:])
	return out
}

// DecodeNarrow reads a 16-bit length: bounded by its width, so the
// worst allocation is the 64 KiB the attacker already paid to send.
func DecodeNarrow(b []byte) []byte {
	n := binary.BigEndian.Uint16(b)
	return make([]byte, n)
}

// Parse hands the decoded length to a helper: the sink reports in the
// helper, with the chain crossing the call.
func Parse(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return alloc(int(n))
}

func alloc(n int) []byte {
	return make([]byte, n) // want `make sized from untrusted wire bytes without a dominating bounds guard: untrusted wire bytes → wire\.Parse → wire\.alloc`
}

// Trusted is waived: its own sink is silenced, but the tainted length
// it forwards must still taint the unwaived helper — a waiver can
// never launder attacker bytes for the rest of the call tree.
//
//repro:wiretrusted fixture: framing is assumed fuzz-verified; proves the waiver does not stop propagation
func Trusted(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	big := make([]byte, n) // waived: no finding on this line
	_ = big
	return allocT(n)
}

func allocT(n int) []byte {
	return make([]byte, n) // want `make sized from untrusted wire bytes without a dominating bounds guard: untrusted wire bytes → wire\.Trusted → wire\.allocT`
}

// BareWire carries a directive with no justification.
//
//repro:wiretrusted
func BareWire() {} // want `//repro:wiretrusted directive without a reason`

// Scan iterates as many times as the wire says.
func Scan(b []byte) int {
	count := binary.BigEndian.Uint32(b)
	sum := 0
	for i := uint32(0); i < count; i++ { // want `loop bounded by an untrusted wire value without a dominating bounds guard: untrusted wire bytes → wire\.Scan`
		sum += int(i)
	}
	return sum
}

// At indexes by a wire-decoded offset.
func At(b []byte) byte {
	off := binary.BigEndian.Uint32(b)
	return b[off] // want `slice index derived from untrusted wire bytes without a dominating bounds guard: untrusted wire bytes → wire\.At`
}

// Window slices by a wire-decoded bound.
func Window(b []byte) []byte {
	end := binary.BigEndian.Uint32(b)
	return b[:end] // want `slice bound derived from untrusted wire bytes without a dominating bounds guard: untrusted wire bytes → wire\.Window`
}
