// Package srv is the non-codec half of the wiretaint fixture: taint
// entering through a network read buffer rather than a codec
// parameter, outside the source packages.
package srv

import (
	"encoding/binary"
	"io"
	"net"
)

// RecvAlloc sizes an allocation from bytes a socket wrote into buf.
func RecvAlloc(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 1024)
	if _, err := conn.Read(buf); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf)
	out := make([]byte, n) // want `make sized from untrusted wire bytes without a dominating bounds guard: network read buffer → srv\.RecvAlloc`
	return out, nil
}

// RecvBounded guards the decoded length before allocating.
func RecvBounded(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 1024)
	if _, err := conn.Read(buf); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n < 0 || n > len(buf) {
		return nil, nil
	}
	return make([]byte, n), nil
}

// FrameAlloc is the torn frame codec: a length word read off the wire
// sizes the payload buffer with no cap between them.
func FrameAlloc(conn net.Conn) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	payload := make([]byte, n) // want `make sized from untrusted wire bytes without a dominating bounds guard: network read buffer → srv\.FrameAlloc`
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// FrameBounded is the length-prefixed frame codec done right — the
// early-return cap dominates the allocation (the distsurvey shape).
func FrameBounded(conn net.Conn) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > 1<<20 {
		return nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
