// Package srv is the non-codec half of the wiretaint fixture: taint
// entering through a network read buffer rather than a codec
// parameter, outside the source packages.
package srv

import (
	"encoding/binary"
	"net"
)

// RecvAlloc sizes an allocation from bytes a socket wrote into buf.
func RecvAlloc(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 1024)
	if _, err := conn.Read(buf); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf)
	out := make([]byte, n) // want `make sized from untrusted wire bytes without a dominating bounds guard: network read buffer → srv\.RecvAlloc`
	return out, nil
}

// RecvBounded guards the decoded length before allocating.
func RecvBounded(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 1024)
	if _, err := conn.Read(buf); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n < 0 || n > len(buf) {
		return nil, nil
	}
	return make([]byte, n), nil
}
