// Package rfcconst is a golden-file fixture. It is type-checked under
// the fake import path "repro/internal/dnswire" so the registry enum
// types it declares look like the real ones; the analyzer keys on the
// declaring package path, not the type identity.
package rfcconst

// Type is a stand-in for the dnswire RR-type registry enum.
type Type uint16

// RCode is a stand-in for the dnswire response-code enum.
type RCode uint16

// NSEC3HashAlg is a stand-in for the NSEC3 hash-algorithm enum.
type NSEC3HashAlg uint8

// Registry constants: const declarations are exempt everywhere — minting
// named values from numbers is exactly what a registry does.
const (
	TypeNSEC3 Type         = 50
	NSEC3SHA1 NSEC3HashAlg = 1
)

func magicVar() Type {
	var t Type = 50 // want `magic number 50 used as dnswire\.Type; write the named constant TypeNSEC3`
	return t
}

func magicCompare(t Type) bool {
	return t == 47 // want `magic number 47 used as dnswire\.Type; write the named constant TypeNSEC`
}

func magicUnknown(r RCode) bool {
	return r == 23 // want `magic number 23 used as dnswire\.RCode; define and use a named constant`
}

func magicHashAlg() NSEC3HashAlg {
	var a NSEC3HashAlg
	a = 1 // want `magic number 1 used as dnswire\.NSEC3HashAlg; write the named constant NSEC3HashSHA1`
	return a
}

// namedUse is a near miss: the named constant is the required form.
func namedUse() Type {
	return TypeNSEC3
}

// zeroValue is a near miss: zero (NOERROR, no flags) reads fine bare.
func zeroValue(r RCode) bool {
	return r == 0
}

// untypedInt is a near miss: the same number typed as plain int is not
// a protocol registry value.
func untypedInt() int {
	n := 50
	return n
}
