// Package cgfix exercises every edge kind the call-graph builder
// resolves; callgraph_test.go asserts the resulting edges.
package cgfix

func callee() {}

func plainCall() { callee() }

func spawn() { go callee() }

func deferred() { defer callee() }

func closure() int {
	f := func() int { return 1 }
	return f()
}

func immediate() {
	func() { callee() }()
}

func reference() func() { return callee }

// Doer is dispatched through below.
type Doer interface{ Do() }

// RealDoer is the one concrete implementation in the fixture.
type RealDoer struct{}

// Do implements Doer.
func (RealDoer) Do() {}

func dispatch(d Doer) { d.Do() }
