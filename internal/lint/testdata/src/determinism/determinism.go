// Package determinism is a golden-file fixture. It is type-checked by
// the lint tests under the fake import path "repro/internal/population"
// so the determinism analyzer treats it as in scope. Lines marked
// `// want "..."` must produce a matching diagnostic; unmarked lines
// must stay silent.
package determinism

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"
)

func wallClock() time.Time {
	t := time.Now() // want `call to time\.Now leaks the wall clock`
	return t
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `call to time\.Since leaks the wall clock`
}

// fixedDate is a near miss: constructing a specific instant is
// deterministic and allowed.
func fixedDate() time.Time {
	return time.Date(2024, 1, 15, 0, 0, 0, 0, time.UTC)
}

func globalDraw() int {
	return rand.IntN(10) // want `call to rand\.IntN draws from the global rand source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `call to rand\.Shuffle draws from the global rand source`
}

// seededDraw is a near miss: constructors are allowed and methods on a
// seeded stream are the sanctioned pattern.
func seededDraw(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, seed))
	return rng.IntN(10)
}

func printDuringRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written inside range over map m depends on map iteration order`
	}
}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map m depends on map iteration order`
	}
	return keys
}

// appendSorted is a near miss: the slice is sorted after the loop in
// the same block, so map order cannot leak out.
func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perIterationLocal is a near miss: the accumulator is declared inside
// the loop body and rebuilt each pass, so map order cannot leak.
func perIterationLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

// countRange is a near miss: pure accumulation is order-insensitive.
func countRange(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// annotatedRoot is a near miss: the //repro:nondeterministic directive
// (with a reason) marks a sanctioned root, so the intraprocedural scan
// skips the body; detertaint audits the directive itself.
//
//repro:nondeterministic fixture: telemetry clock, never report data
func annotatedRoot() time.Time {
	return time.Now()
}

// bareAnnotation does NOT waive the finding: a directive without a
// reason is no waiver (and detertaint reports the directive).
//
//repro:nondeterministic
func bareAnnotation() time.Time {
	return time.Now() // want `call to time.Now leaks the wall clock`
}
