// Package svc is the consumer half of the ctxprop fixture: cross-
// package blocking chains, context roots in library code, select
// service loops, and the semaphore idiom.
package svc

import (
	"context"
	"net"

	"repro/internal/iolib"
)

// Fetch crosses the package boundary into blocking iolib.Pull; the
// report carries the whole chain.
func Fetch(addr string) ([]byte, error) { // want `svc\.Fetch is on a blocking path to net\.Dial without a context\.Context parameter: svc\.Fetch → iolib\.Pull → net\.Dial`
	return iolib.Pull(addr)
}

// FetchCtx threads its context into the compliant twin.
func FetchCtx(ctx context.Context, addr string) ([]byte, error) {
	return iolib.PullCtx(ctx, addr)
}

// UseWaived calls a waived function: the waiver absorbs, so the
// blocking inside DeadlineRead imposes nothing here.
func UseWaived(conn net.Conn) error {
	buf := make([]byte, 2)
	_, err := iolib.DeadlineRead(conn, buf)
	return err
}

// Boot mints a context root in library code.
func Boot() context.Context {
	return context.Background() // want `context\.Background in non-main code disconnects cancellation`
}

// Pump is a service loop whose select can never be stopped from the
// outside.
func Pump(ctx context.Context, in <-chan int, out chan<- int) {
	for {
		select { // want `select loop in svc\.Pump has no cancellation case`
		case v := <-in:
			out <- v
		}
	}
}

// PumpCtx is the compliant twin: the ctx.Done receive is the
// cancellation case.
func PumpCtx(ctx context.Context, in <-chan int, out chan<- int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			out <- v
		}
	}
}

// Acquire takes a semaphore slot with a bare struct{}-channel send.
func Acquire(sem chan struct{}) { // want `svc\.Acquire is on a blocking path to a bare struct\{\}-channel send \(semaphore acquire\) without a context\.Context parameter`
	sem <- struct{}{}
}

// AcquireCtx is the compliant twin: the worker-pool acquire loop shape
// (a select whose other arm is ctx.Done), which must stay quiet.
func AcquireCtx(ctx context.Context, sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Heartbeat writes a keepalive frame but gives its caller no way to
// abandon a stuck socket.
func Heartbeat(conn net.Conn) error { // want `svc\.Heartbeat is on a blocking path to net\.Write without a context\.Context parameter: svc\.Heartbeat → net\.Write`
	_, err := conn.Write([]byte("beat"))
	return err
}

// HeartbeatCtx is the compliant twin: the wire codec shape, ctx
// threaded to the blocking write.
func HeartbeatCtx(ctx context.Context, conn net.Conn) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := conn.Write([]byte("beat"))
	return err
}

// LeaseWait is a coordinator-style grant loop: it parks on a wake
// broadcast with a cancellation case, so both rules stay quiet.
func LeaseWait(ctx context.Context, wake <-chan struct{}, grant func() bool) bool {
	for {
		if grant() {
			return true
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return false
		}
	}
}

// HeartbeatLoop ticks forever: nothing can stop the select from the
// outside, the exact leak a dead lease leaves behind.
func HeartbeatLoop(tick <-chan int, beat func()) {
	for {
		select { // want `select loop in svc\.HeartbeatLoop has no cancellation case`
		case <-tick:
			beat()
		}
	}
}
