// Package iolib is the unscoped infrastructure half of the ctxprop
// fixture: functions that block on the network, with and without the
// cancellation contract, plus a waived function and a bare directive.
package iolib

import (
	"context"
	"io"
	"net"
)

// Pull dials and reads with no way for the caller to abandon either.
func Pull(addr string) ([]byte, error) { // want `iolib\.Pull is on a blocking path to net\.Dial without a context\.Context parameter: iolib\.Pull → net\.Dial`
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// PullCtx is the compliant twin: the signature carries the contract,
// and the dial honours it.
func PullCtx(ctx context.Context, addr string) ([]byte, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// DeadlineRead fills buf from a connection its caller has armed with a
// read deadline — the block is bounded without a ctx.
//
//repro:ctxexempt the caller arms a read deadline before every call, bounding the fill
func DeadlineRead(conn net.Conn, buf []byte) (int, error) {
	return io.ReadFull(conn, buf)
}

// Bare carries a directive with no justification.
//
//repro:ctxexempt
func Bare() {} // want `//repro:ctxexempt directive without a reason`
