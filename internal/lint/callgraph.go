package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural substrate of the suite: a static
// call graph over every loaded package. The intraprocedural analyzers
// (PR 1) see one function body at a time, which forced the determinism
// guarantee onto a hand-maintained file exemption list; the graph lets
// detertaint, goleak, and lockorder reason about whole call chains
// instead — "core reaches time.Now through the scanner" rather than
// "this file may read the clock".
//
// Resolution is deliberately static and conservative:
//
//   - direct calls to declared functions and methods resolve exactly;
//   - go f() and defer f() contribute edges with their own kinds, so
//     analyzers can distinguish a spawned call from a sequential one;
//   - a function literal is its own node, linked to its enclosing
//     function by a closure edge (the encloser constructs it and, as
//     far as a static analysis can tell, may run it);
//   - a call through an interface fans out to the matching method of
//     every named type in the loaded packages whose method set
//     satisfies the interface (dynamic edges);
//   - a function merely referenced as a value (passed as a callback,
//     stored in a field) gets a ref edge from the referencing
//     function, because the reference may be called anywhere.
//
// Over-approximation (ref and dynamic edges that never fire at
// runtime) can cause false positives, never false negatives — the
// right bias for reproducibility invariants.

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind int

const (
	// EdgeCall is a plain, sequential call.
	EdgeCall EdgeKind = iota
	// EdgeGo is a call spawned on a new goroutine (go f()).
	EdgeGo
	// EdgeDefer is a deferred call (defer f()).
	EdgeDefer
	// EdgeDynamic is a possible callee of an interface-method call,
	// resolved through the method sets of the loaded packages.
	EdgeDynamic
	// EdgeClosure links a function to a literal defined inside it.
	EdgeClosure
	// EdgeRef records a function value referenced without being
	// called: the reference may be invoked by whoever receives it.
	EdgeRef
)

// String names the kind for diagnostics and tests.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	case EdgeDynamic:
		return "dynamic"
	case EdgeClosure:
		return "closure"
	case EdgeRef:
		return "ref"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// CallEdge is one resolved caller→callee relation.
type CallEdge struct {
	Caller, Callee *CallNode
	Kind           EdgeKind
	// Pos locates the call, go, defer, or reference site.
	Pos token.Pos
}

// CallNode is one function in the graph: a declared function or method
// (Func non-nil) or a function literal (Lit non-nil).
type CallNode struct {
	// Func is the declared function or method, nil for literals.
	Func *types.Func
	// Decl is the syntax of a declared function (nil for literals).
	Decl *ast.FuncDecl
	// Lit is the syntax of a function literal (nil for declared).
	Lit *ast.FuncLit
	// Pkg is the loaded package the node's body lives in.
	Pkg *Package
	// NondetReason is the justification text of a
	// //repro:nondeterministic directive on the declaration, "" when
	// the function is not annotated. Annotated functions are sanctioned
	// nondeterminism roots: detertaint does not propagate taint past
	// them.
	NondetReason string
	// Annotated reports whether the directive is present at all (even
	// with a missing reason, which detertaint flags separately).
	Annotated bool
	// Directives maps every //repro:<name> directive on the
	// declaration to its (possibly empty) reason text. NondetReason and
	// Annotated mirror the //repro:nondeterministic entry.
	Directives map[string]string
	// Out and In are the outgoing and incoming edges, in source order.
	Out, In []*CallEdge
}

// Body returns the node's function body ast.
func (n *CallNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *CallNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Name renders the node for diagnostics: package-qualified for
// functions ("core.RunSurvey"), receiver-qualified for methods
// ("(*Scanner).query"), position-qualified for literals
// ("func literal at scanner.go:362").
func (n *CallNode) Name() string {
	if n.Func != nil {
		if sig, ok := n.Func.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				return "(*" + typeBaseName(ptr.Elem()) + ")." + n.Func.Name()
			}
			return typeBaseName(recv) + "." + n.Func.Name()
		}
		if n.Func.Pkg() != nil {
			return n.Func.Pkg().Name() + "." + n.Func.Name()
		}
		return n.Func.Name()
	}
	if n.Lit != nil && n.Pkg != nil {
		pos := n.Pkg.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("func literal at %s:%d", shortPath(pos.Filename), pos.Line)
	}
	return "<unknown>"
}

// typeBaseName returns the bare name of a named (or aliased) type.
func typeBaseName(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return t.String()
}

// shortPath trims a file path to its last two segments, keeping
// diagnostics readable without losing the package directory.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// CallGraph is the static call graph of a loaded package set.
type CallGraph struct {
	// Nodes lists every node in deterministic order: declared
	// functions in package/position order, literals after their
	// enclosing function.
	Nodes []*CallNode

	// funcs is keyed by funcKey, not *types.Func: each package is
	// type-checked against export data, so the same method seen from an
	// importing package is a distinct object. The key restores identity
	// across packages.
	funcs map[string]*CallNode
	lits  map[*ast.FuncLit]*CallNode
}

// funcKey is the cross-package identity of a declared function or
// method: "pkgpath.Name" or "pkgpath.(*Recv).Name".
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv, ptr = p.Elem(), "*"
		}
		return pkg + ".(" + ptr + typeBaseName(recv) + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// FuncNode returns the node for a declared function or method, or nil
// when fn was not declared (with a body) in the loaded packages.
func (g *CallGraph) FuncNode(fn *types.Func) *CallNode {
	return g.funcs[funcKey(fn)]
}

// LitNode returns the node for a function literal in the loaded
// packages, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CallNode {
	return g.lits[lit]
}

// NondetDirective is the comment directive that marks a function as a
// sanctioned nondeterminism root, e.g.
//
//	//repro:nondeterministic span timing is telemetry, never report data
//	func (t *Tracer) Start(...)
//
// The reason is mandatory; detertaint reports a bare directive.
const NondetDirective = "//repro:nondeterministic"

// Directive reports whether the declaration carries the named
// //repro: directive, and its reason text. Literals carry nothing:
// only declared functions can be annotated, keeping waivers greppable.
func (n *CallNode) Directive(name string) (reason string, ok bool) {
	reason, ok = n.Directives[name]
	return reason, ok
}

// BuildCallGraph constructs the call graph of pkgs. All packages must
// share one token.FileSet (as Load guarantees).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		funcs: make(map[string]*CallNode),
		lits:  make(map[*ast.FuncLit]*CallNode),
	}
	b := &graphBuilder{g: g}
	// Pass 1: a node per declared function, so forward references and
	// cross-package calls resolve regardless of build order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &CallNode{Func: fn, Decl: fd, Pkg: pkg}
				node.Directives = parseDirectives(fd.Doc)
				node.NondetReason, node.Annotated = node.Directive(NondetDirective)
				g.funcs[funcKey(fn)] = node
				g.Nodes = append(g.Nodes, node)
			}
		}
	}
	b.collectConcreteTypes(pkgs)
	// Pass 2: edges (and literal nodes) from every body.
	for _, node := range append([]*CallNode(nil), g.Nodes...) {
		b.walkBody(node, node.Decl.Body)
	}
	return g
}

// graphBuilder carries pass-2 state.
type graphBuilder struct {
	g *CallGraph
	// concrete is every named type defined in the loaded packages,
	// the candidate set for interface-dispatch resolution.
	concrete []types.Type
}

// collectConcreteTypes gathers the named types (and their pointers)
// whose method sets can satisfy an interface call.
func (b *graphBuilder) collectConcreteTypes(pkgs []*Package) {
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			b.concrete = append(b.concrete, t, types.NewPointer(t))
		}
	}
}

// addEdge links caller→callee and records the edge on both nodes.
func addEdge(caller, callee *CallNode, kind EdgeKind, pos token.Pos) {
	e := &CallEdge{Caller: caller, Callee: callee, Kind: kind, Pos: pos}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// walkBody resolves the edges of one node's body. Nested function
// literals become child nodes and are walked recursively under their
// own identity.
func (b *graphBuilder) walkBody(node *CallNode, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	info := node.Pkg.Info
	// Call sites spawned by go/defer carry those kinds instead of
	// EdgeCall; callee identifiers must not double as ref edges.
	kinds := map[*ast.CallExpr]EdgeKind{}
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			kinds[n.Call] = EdgeGo
		case *ast.DeferStmt:
			kinds[n.Call] = EdgeDefer
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := b.g.lits[n]
			if child == nil {
				// Usually fresh; an immediately invoked literal was
				// already registered by resolveCall on its CallExpr.
				child = &CallNode{Lit: n, Pkg: node.Pkg}
				b.g.lits[n] = child
				b.g.Nodes = append(b.g.Nodes, child)
			}
			addEdge(node, child, EdgeClosure, n.Pos())
			b.walkBody(child, n.Body)
			return false // the child owns its body
		case *ast.CallExpr:
			kind, ok := kinds[n]
			if !ok {
				kind = EdgeCall
			}
			b.resolveCall(node, n, kind)
			return true
		case *ast.Ident:
			if calleeIdents[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if callee := b.g.FuncNode(fn); callee != nil {
					addEdge(node, callee, EdgeRef, n.Pos())
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// resolveCall adds the edge(s) for one call expression.
func (b *graphBuilder) resolveCall(caller *CallNode, call *ast.CallExpr, kind EdgeKind) {
	info := caller.Pkg.Info
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked literal: the closure edge is added when
		// the literal is visited; record the invocation too so go/defer
		// kinds survive (go func(){...}()).
		callee := b.g.lits[lit]
		if callee == nil {
			// The inspection visits a CallExpr before its Fun child, so
			// an immediately invoked literal is registered here and its
			// body walked when the FuncLit node itself is reached.
			callee = &CallNode{Lit: lit, Pkg: caller.Pkg}
			b.g.lits[lit] = callee
			b.g.Nodes = append(b.g.Nodes, callee)
		}
		addEdge(caller, callee, kind, call.Pos())
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return // builtin, conversion, or function-typed variable
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := sig.Recv().Type(); types.IsInterface(recv.Underlying()) {
			b.resolveDynamic(caller, call, fn, kind)
			return
		}
	}
	if callee := b.g.FuncNode(fn); callee != nil {
		addEdge(caller, callee, kind, call.Pos())
	}
}

// resolveDynamic fans an interface-method call out to every concrete
// method in the loaded packages that can satisfy it.
func (b *graphBuilder) resolveDynamic(caller *CallNode, call *ast.CallExpr, iface *types.Func, kind EdgeKind) {
	recv := iface.Type().(*types.Signature).Recv().Type()
	dynKind := kind
	if dynKind == EdgeCall {
		dynKind = EdgeDynamic
	}
	seen := map[*CallNode]bool{}
	for _, t := range b.concrete {
		if !types.Implements(t, recv.Underlying().(*types.Interface)) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, iface.Pkg(), iface.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if callee := b.g.FuncNode(m); callee != nil && !seen[callee] {
			seen[callee] = true
			addEdge(caller, callee, dynKind, call.Pos())
		}
	}
}
