package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAllocAnalyzer is the static twin of -benchmem: functions
// reachable from a //repro:hotpath root must contain no allocation
// sites. The ROADMAP's line-rate serving milestone depends on the
// answer path not allocating per query; this analyzer turns that from
// a benchmark regression into a compile-time finding with the full
// root→sink chain.
//
// Roots are declared functions annotated //repro:hotpath <reason>.
// Reachability follows call, go, defer, and closure edges of the
// cross-package graph. Dynamic (interface-dispatch) and ref edges are
// excluded: an interface boundary is a unit boundary — the callee
// signature carries its own contract and can carry its own root — and
// the boxing *at the call site* is what this analyzer flags.
//
// Allocation sites, per function body (nested literals are their own
// nodes, reached over the closure edge):
//
//   - make and new builtins;
//   - append whose destination is a fresh local — appends into
//     caller-provided capacity (a parameter, receiver field, local
//     array slice, or a buffer threaded through append-style calls)
//     amortize against memory the caller owns and are allowed;
//   - composite literals with slice or map type, and &T{...} (value
//     struct literals live on the stack);
//   - string ↔ []byte / []rune conversions;
//   - interface boxing at call sites: a concrete non-pointer value
//     passed to an interface-typed parameter;
//   - function literals that capture enclosing variables (the closure
//     context is heap-allocated);
//   - map writes;
//   - string concatenation with non-constant operands;
//   - any call into package fmt, and errors.New.
//
// The waiver is //repro:allocok <reason> on the declaration. It
// absorbs, like ctxprop's: the waived function's own sites are
// silenced and propagation stops, so a deliberately-allocating helper
// (lazy materialization, response skeleton construction) does not
// condemn its hot callers. Waiver hygiene is enforced both ways: a
// bare directive without a reason is a finding, and so is a waiver
// that silences nothing — neither the function's own body nor anything
// it reaches contains an allocation site.
var HotPathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocation sites (make/new, growing append, escaping " +
		"composites, string conversions, interface boxing, closures, map " +
		"writes, fmt) in functions reachable from //repro:hotpath roots",
	RunProject: runHotPathAlloc,
}

// allocSite is one allocation found in a node's body.
type allocSite struct {
	pos  token.Pos
	desc string
}

// hotMark records how a node became hot: through which caller (nil for
// roots) from which root.
type hotMark struct {
	prev *CallNode
	root *CallNode
}

func runHotPathAlloc(pass *ProjectPass) {
	g := pass.Project.Graph

	// Directive hygiene: reasons are mandatory in both directions, and
	// a function cannot be simultaneously a root and a waiver.
	for _, node := range g.Nodes {
		if reason, ok := node.Directive(HotPathDirective); ok && reason == "" {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s directive without a reason; state why this path must serve allocation-free", HotPathDirective)
		}
		if reason, ok := node.Directive(AllocOKDirective); ok && reason == "" {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s directive without a reason; state why this allocation is acceptable on a hot path", AllocOKDirective)
		}
		_, isRoot := node.Directive(HotPathDirective)
		_, isWaived := node.Directive(AllocOKDirective)
		if isRoot && isWaived {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s and %s on the same declaration contradict each other; a root cannot waive itself", HotPathDirective, AllocOKDirective)
		}
	}

	// Forward reachability from roots over call/go/defer/closure
	// edges; BFS for shortest chains. Waived nodes absorb.
	marks := map[*CallNode]hotMark{}
	var queue []*CallNode
	for _, node := range g.Nodes {
		if reason, ok := node.Directive(HotPathDirective); ok && reason != "" && !allocWaived(node) {
			marks[node] = hotMark{root: node}
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, e := range node.Out {
			switch e.Kind {
			case EdgeCall, EdgeGo, EdgeDefer, EdgeClosure:
			default:
				continue
			}
			callee := e.Callee
			if _, seen := marks[callee]; seen || allocWaived(callee) {
				continue
			}
			marks[callee] = hotMark{prev: node, root: marks[node].root}
			queue = append(queue, callee)
		}
	}

	// Report every allocation site in every hot node, with the chain
	// from its root.
	for _, node := range g.Nodes {
		if _, hot := marks[node]; !hot {
			continue
		}
		for _, site := range allocSites(node) {
			pass.Reportf(node.Pkg.Fset, site.pos,
				"hot path must not allocate: %s in %s; hoist the allocation out of the serving path, reuse caller-provided or pooled memory, or annotate the function with %s <reason>",
				site.desc, hotChainString(node, marks), AllocOKDirective)
		}
	}

	// Waiver hygiene, second direction: an allocok that silences
	// nothing is stale and must be removed. "Silences" means the waived
	// function's own body, or anything reachable from it (through
	// further waived nodes too), contains at least one allocation site.
	for _, node := range g.Nodes {
		if !allocWaived(node) {
			continue
		}
		if !waiverUseful(g, node) {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s on %s waives nothing: no allocation site in its body or anything it reaches; remove the stale waiver", AllocOKDirective, node.Name())
		}
	}
}

// allocWaived reports whether the node carries a usable allocok
// directive (reason required).
func allocWaived(node *CallNode) bool {
	r, ok := node.Directive(AllocOKDirective)
	return ok && r != ""
}

// waiverUseful reports whether an allocok waiver on node silences at
// least one allocation site in node's body or its reachable subtree.
// A call to a function the graph has no body for — another module, or
// a project package outside the current run's scope, resolved only
// through export data — counts as useful too: the callee may
// allocate, so the waiver can never be proven stale. Without this the
// verdict would flip between full-tree and subset runs.
func waiverUseful(g *CallGraph, node *CallNode) bool {
	seen := map[*CallNode]bool{}
	var walk func(n *CallNode) bool
	walk = func(n *CallNode) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if len(allocSites(n)) > 0 || callsOutsideGraph(g, n) {
			return true
		}
		for _, e := range n.Out {
			switch e.Kind {
			case EdgeCall, EdgeGo, EdgeDefer, EdgeClosure:
				if walk(e.Callee) {
					return true
				}
			}
		}
		return false
	}
	return walk(node)
}

// callsOutsideGraph reports whether n's body calls a declared function
// that has no node in the graph, i.e. one whose body the analysis
// cannot see.
func callsOutsideGraph(g *CallGraph, n *CallNode) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	info := n.Pkg.Info
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && g.FuncNode(fn) == nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// hotChainString renders the path from the root annotation to node,
// e.g. "(*Server).Handle → authserver.apexFor".
func hotChainString(node *CallNode, marks map[*CallNode]hotMark) string {
	var parts []string
	for n := node; n != nil; n = marks[n].prev {
		parts = append(parts, n.Name())
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}

// allocSites scans a node's own body (nested literals excluded: they
// are their own nodes) for allocation sites.
func allocSites(node *CallNode) []allocSite {
	body := node.Body()
	if body == nil {
		return nil
	}
	info := node.Pkg.Info
	owned := ownedBuffers(node)
	var sites []allocSite
	add := func(pos token.Pos, desc string) {
		sites = append(sites, allocSite{pos: pos, desc: desc})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal's body is its own node; the *creation* of a
			// capturing closure allocates here, in the encloser.
			if capturesVariables(info, n) {
				add(n.Pos(), "a variable-capturing closure (its context is heap-allocated)")
			}
			return false
		case *ast.CallExpr:
			checkCallAlloc(info, n, owned, add)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "a slice literal")
			case *types.Map:
				add(n.Pos(), "a map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "a heap-escaping &composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				if tv, ok := info.Types[ast.Expr(n)]; !ok || tv.Value == nil {
					add(n.Pos(), "a string concatenation")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
						add(lhs.Pos(), "a map write")
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
					add(n.Pos(), "a map write")
				}
			}
		}
		return true
	})
	return sites
}

// checkCallAlloc classifies one call expression: allocating builtins,
// string conversions, fmt/errors.New calls, and interface boxing of
// concrete non-pointer arguments.
func checkCallAlloc(info *types.Info, call *ast.CallExpr, owned map[types.Object]bool, add func(token.Pos, string)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				add(call.Pos(), "a make call")
			case "new":
				add(call.Pos(), "a new call")
			case "append":
				if len(call.Args) > 0 && !bufferOwned(info, call.Args[0], owned) {
					add(call.Pos(), "an append into a fresh (non-caller-owned) buffer")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte / []rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if isStringType(to) && isByteOrRuneSlice(from) {
			add(call.Pos(), "a []byte/[]rune-to-string conversion")
		} else if isByteOrRuneSlice(to) && isStringType(from) {
			add(call.Pos(), "a string-to-[]byte/[]rune conversion")
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		add(call.Pos(), "a fmt."+fn.Name()+" call")
		return
	}
	if isPkgFunc(fn, "errors", "New") {
		add(call.Pos(), "an errors.New call (hoist the sentinel to a package var)")
		return
	}
	// Interface boxing: a concrete non-pointer argument converted to an
	// interface parameter allocates at the call site. Pointers, other
	// interfaces, and untyped nils fit the interface word for free.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a spread slice is passed as-is
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		add(arg.Pos(), "interface boxing of a non-pointer "+at.String()+" argument")
	}
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturesVariables reports whether the literal references objects
// declared outside its own body (other than package-level ones):
// exactly the captures that force a heap-allocated closure context.
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// ownedBuffers computes the set of local variables holding
// caller-owned capacity in node's body: parameters and the receiver to
// start, grown by a fixpoint over assignments whose right-hand side
// derives from an owned buffer (slicing, append, or threading the
// buffer through an append-style call that also receives it).
func ownedBuffers(node *CallNode) map[types.Object]bool {
	owned := map[types.Object]bool{}
	if node.Func != nil {
		if sig, ok := node.Func.Type().(*types.Signature); ok {
			if r := sig.Recv(); r != nil {
				owned[r] = true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				owned[sig.Params().At(i)] = true
			}
		}
	}
	if node.Lit != nil {
		if sig, ok := node.Pkg.Info.TypeOf(node.Lit).(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				owned[sig.Params().At(i)] = true
			}
		}
	}
	body := node.Body()
	if body == nil {
		return owned
	}
	info := node.Pkg.Info
	// Fixpoint: assignments propagate ownedness left-to-right; two
	// passes handle the occasional use-before-later-def in loops.
	for pass := 0; pass < 2; pass++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || owned[obj] {
					continue
				}
				if ownedExpr(info, as.Rhs[i], owned) {
					owned[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return owned
}

// ownedExpr reports whether an expression evaluates to caller-owned
// capacity: an owned variable, a field of one, a deref or slice of
// one, a slice of a local fixed-size array, an append to one, or a
// call that was handed one (the `buf = f(buf)` append-style threading
// idiom).
func ownedExpr(info *types.Info, e ast.Expr, owned map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj != nil && owned[obj]
	case *ast.SelectorExpr:
		// A field of an owned object (e.buf on a receiver) shares its
		// owner's capacity budget.
		return ownedExpr(info, e.X, owned)
	case *ast.StarExpr:
		return ownedExpr(info, e.X, owned)
	case *ast.SliceExpr:
		if isLocalArray(info, e.X) {
			return true
		}
		return ownedExpr(info, e.X, owned)
	case *ast.IndexExpr:
		return ownedExpr(info, e.X, owned)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(e.Args) > 0 {
				return ownedExpr(info, e.Args[0], owned)
			}
		}
		// Append-style call: the buffer is threaded through as an
		// argument and (by the idiom's contract) returned.
		for _, arg := range e.Args {
			if ownedExpr(info, arg, owned) {
				return true
			}
		}
		return false
	}
	return false
}

// bufferOwned reports whether an append destination resolves to
// caller-owned capacity.
func bufferOwned(info *types.Info, e ast.Expr, owned map[types.Object]bool) bool {
	return ownedExpr(info, e, owned)
}

// isLocalArray reports whether e denotes a variable (or pointer to
// one) of fixed-size array type: slicing it yields a stack-backed
// buffer whose capacity is compile-time bounded.
func isLocalArray(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(ast.Unparen(e))
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Array)
	return ok
}
