package lint

import (
	"go/ast"
	"go/types"
)

// PoolSafeAnalyzer enforces sync.Pool discipline on the pooled-buffer
// serving path: a value checked out with Get must be returned with Put
// on every path, never used after its Put, and never Put twice. The
// zero-allocation UDP loop and message encoder recycle buffers per
// packet; any of these three mistakes is either a leak (pool pressure
// returns the allocations hotpathalloc just removed) or a data race
// (two goroutines sharing one recycled buffer).
//
// The analysis is intra-procedural and flow-sensitive: branches fork
// the tracking state and rejoin conservatively (a value Put on one
// fall-through branch but not the other reports nothing — only
// definite violations are findings). Ownership transfers end the
// obligation: returning the value, passing it to a go or defer call
// (defer pool.Put(x) and defer release(x) both count), sending it on a
// channel, storing it into a field, global, map, or slice, or
// capturing it in a function literal. Plain calls are borrows. Values
// escaping this way are the callee's responsibility; the analyzer
// tracks each function's own obligations only.
//
// A Get inside a loop must resolve its obligation within the
// iteration: a pool value still live at a continue or at the end of
// the loop body leaks once per packet, the worst possible place.
var PoolSafeAnalyzer = &Analyzer{
	Name: "poolsafe",
	Doc: "every sync.Pool Get must be Put on all paths, never used " +
		"after Put, never Put twice",
	Run: runPoolSafe,
}

// poolState is the tracking state of one Get result.
type poolState int

const (
	poolLive  poolState = iota // checked out, Put still owed
	poolPut                    // returned to the pool
	poolGone                   // ownership transferred; no local obligation
	poolMaybe                  // branches disagree; only definite bugs report
)

func runPoolSafe(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &poolWalker{pass: pass, info: pass.Info}
			st := map[types.Object]poolState{}
			terminated := w.walkStmts(fd.Body.List, st)
			if !terminated {
				w.flagLive(st)
			}
		}
	}
}

// poolWalker carries one function's walk.
type poolWalker struct {
	pass *Pass
	info *types.Info
	// loopLocals, when non-nil, collects Gets performed inside the
	// innermost loop body, which must resolve before the iteration
	// ends.
	loopLocals map[types.Object]bool
}

// isSyncPoolMethod reports whether call invokes the named method on a
// sync.Pool (or *sync.Pool) receiver. Shared by poolsafe and bufalias.
func isSyncPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// isSyncPoolGet unwraps an expression that is (possibly a type
// assertion over) a (*sync.Pool).Get call.
func isSyncPoolGet(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return ok && isSyncPoolMethod(info, call, "Get")
}

// trackedIdent resolves an expression to a tracked object, unwrapping
// parens only — derivations (slices, derefs) are uses, not the value.
func (w *poolWalker) trackedIdent(e ast.Expr, st map[types.Object]poolState) (types.Object, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := w.info.Uses[id]
	if obj == nil {
		obj = w.info.Defs[id]
	}
	if obj == nil {
		return nil, false
	}
	_, tracked := st[obj]
	return obj, tracked
}

// checkUses reports tracked values read after their Put. The node is
// scanned for identifiers; exclude suppresses the one identifier that
// is the current statement's own Put argument.
func (w *poolWalker) checkUses(node ast.Node, st map[types.Object]poolState, exclude ast.Expr) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if exclude != nil && ast.Unparen(exclude) == ast.Node(id) {
			return true
		}
		obj := w.info.Uses[id]
		if obj == nil {
			return true
		}
		if st[obj] == poolPut {
			w.pass.Reportf(id.Pos(),
				"%s is used after being Put back to its sync.Pool; the pool may already have handed it to another goroutine", id.Name)
			st[obj] = poolGone // one report per violation chain
		}
		return true
	})
}

// transferAll marks every tracked value appearing anywhere in node as
// ownership-transferred.
func (w *poolWalker) transferAll(node ast.Node, st map[types.Object]poolState) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := w.info.Uses[id]; obj != nil {
			if s, tracked := st[obj]; tracked && s != poolPut {
				st[obj] = poolGone
			}
		}
		return true
	})
}

// flagLive reports every value still owing a Put at a function exit.
func (w *poolWalker) flagLive(st map[types.Object]poolState) {
	for obj, s := range st {
		if s == poolLive {
			w.pass.Reportf(obj.Pos(),
				"sync.Pool Get result %s is not returned to the pool on every path; Put it (or transfer ownership) before this path exits", obj.Name())
			st[obj] = poolGone
		}
	}
}

// flagLoopLive reports loop-local values still owed at an iteration
// boundary.
func (w *poolWalker) flagLoopLive(st map[types.Object]poolState, locals map[types.Object]bool) {
	for obj := range locals {
		if st[obj] == poolLive {
			w.pass.Reportf(obj.Pos(),
				"sync.Pool Get result %s leaks once per loop iteration; Put it (or transfer ownership) before the iteration ends", obj.Name())
			st[obj] = poolGone
		}
	}
}

// cloneState copies the tracking state for a branch.
func cloneState(st map[types.Object]poolState) map[types.Object]poolState {
	c := make(map[types.Object]poolState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// joinStates merges two fall-through branch states into dst:
// agreement keeps the state, disagreement degrades to poolMaybe.
func joinStates(dst, a, b map[types.Object]poolState) {
	for obj := range a {
		av, bv := a[obj], b[obj]
		if av == bv {
			dst[obj] = av
		} else {
			dst[obj] = poolMaybe
		}
	}
	for obj := range b {
		if _, ok := a[obj]; !ok {
			dst[obj] = poolMaybe
		}
	}
}

// walkStmts walks a statement list, returning whether it definitely
// transfers control away (return, branch, panic).
func (w *poolWalker) walkStmts(list []ast.Stmt, st map[types.Object]poolState) bool {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *poolWalker) walkStmt(stmt ast.Stmt, st map[types.Object]poolState) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		w.checkUses(s, st, nil)
		// New Gets: x := pool.Get().(*T).
		for i, rhs := range s.Rhs {
			if i >= len(s.Lhs) || !isSyncPoolGet(w.info, rhs) {
				continue
			}
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := w.info.Defs[id]; obj != nil {
					st[obj] = poolLive
					if w.loopLocals != nil {
						w.loopLocals[obj] = true
					}
				} else if obj := w.info.Uses[id]; obj != nil {
					st[obj] = poolLive
				}
			}
		}
		// Stores of tracked values into fields, globals, maps, or
		// slices transfer ownership.
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				w.transferAll(s.Rhs[i], st)
			}
		}
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if ok && isSyncPoolMethod(w.info, call, "Put") && len(call.Args) == 1 {
			if obj, tracked := w.trackedIdent(call.Args[0], st); tracked {
				switch st[obj] {
				case poolPut:
					w.pass.Reportf(call.Pos(),
						"%s is Put back to its sync.Pool twice; the pool may hand the same buffer to two goroutines", obj.Name())
				case poolLive, poolMaybe:
					st[obj] = poolPut
				}
				return false
			}
		}
		w.checkUses(s, st, nil)
		// Function literals passed as arguments may retain captures.
		if ok {
			for _, arg := range call.Args {
				if lit, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
					w.transferAll(lit, st)
				}
			}
		}
	case *ast.GoStmt:
		w.checkUses(s, st, nil)
		w.transferAll(s.Call, st)
	case *ast.DeferStmt:
		w.checkUses(s, st, nil)
		// defer pool.Put(x) / defer release(x): the obligation is
		// satisfied at every exit from here on.
		w.transferAll(s.Call, st)
	case *ast.SendStmt:
		w.checkUses(s, st, nil)
		w.transferAll(s.Value, st)
	case *ast.ReturnStmt:
		w.checkUses(s, st, nil)
		for _, r := range s.Results {
			w.transferAll(r, st)
		}
		w.flagLive(st)
		return true
	case *ast.BranchStmt:
		// A continue ends the iteration: loop-local obligations are due.
		if w.loopLocals != nil && s.Tok.String() == "continue" {
			w.flagLoopLive(st, w.loopLocals)
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.checkUses(s.Cond, st, nil)
		bodySt := cloneState(st)
		bodyTerm := w.walkStmts(s.Body.List, bodySt)
		elseSt := cloneState(st)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			replaceState(st, elseSt)
		case elseTerm:
			replaceState(st, bodySt)
		default:
			joinStates(st, bodySt, elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.checkUses(s.Cond, st, nil)
		}
		w.walkLoopBody(s.Body, st)
		if s.Post != nil {
			w.walkStmt(s.Post, st)
		}
	case *ast.RangeStmt:
		w.checkUses(s.X, st, nil)
		w.walkLoopBody(s.Body, st)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.checkUses(s.Tag, st, nil)
		w.walkClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkClauses(s.Body.List, st)
	case *ast.SelectStmt:
		w.walkClauses(s.Body.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	default:
		w.checkUses(stmt, st, nil)
	}
	return false
}

// replaceState overwrites dst with src in place.
func replaceState(dst, src map[types.Object]poolState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// walkLoopBody walks a loop body once with its own loop-local Get set,
// then joins the result conservatively with the pre-loop state (zero
// iterations must stay sound).
func (w *poolWalker) walkLoopBody(body *ast.BlockStmt, st map[types.Object]poolState) {
	saved := w.loopLocals
	w.loopLocals = map[types.Object]bool{}
	bodySt := cloneState(st)
	terminated := w.walkStmts(body.List, bodySt)
	if !terminated {
		w.flagLoopLive(bodySt, w.loopLocals)
	}
	w.loopLocals = saved
	joinStates(st, st, bodySt)
}

// walkClauses walks switch/select clause bodies, each on a cloned
// state, joining all fall-through results.
func (w *poolWalker) walkClauses(clauses []ast.Stmt, st map[types.Object]poolState) {
	base := cloneState(st)
	first := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.checkUses(e, base, nil)
			}
			body = cc.Body
		case *ast.CommClause:
			clSt := cloneState(base)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, clSt)
			}
			if !w.walkStmts(cc.Body, clSt) {
				if first {
					replaceState(st, clSt)
					first = false
				} else {
					joinStates(st, st, clSt)
				}
			}
			continue
		default:
			continue
		}
		clSt := cloneState(base)
		if !w.walkStmts(body, clSt) {
			if first {
				replaceState(st, clSt)
				first = false
			} else {
				joinStates(st, st, clSt)
			}
		}
	}
	if first {
		replaceState(st, base)
	}
}
