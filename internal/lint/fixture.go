package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// This file is the golden-fixture harness, shared by the package's own
// tests and by `reprolint -selfcheck` in CI. Each analyzer owns a
// fixture tree under testdata/src/<root> whose files carry
// analysistest-style `// want `regex`` markers; checking a fixture
// type-checks it under a fake import path (so package scoping applies),
// runs exactly one analyzer, and requires the diagnostics and the
// markers to match one-to-one by line. Running the same comparison in
// CI turns the fixtures from test inputs into a self-check: a toolchain
// or refactor that silently changes analyzer behavior fails the build
// even if no unit test names the changed shape.

// FixturePkg is one package of a golden fixture.
type FixturePkg struct {
	// Subdir under testdata/src/<Root>; "" when the fixture root itself
	// is the package directory.
	Subdir string
	// PkgPath is the fake import path the package is checked under. It
	// drives analyzer scoping (e.g. a path ending in internal/dnswire
	// marks the package as a wiretaint source) and lets later fixture
	// packages import earlier ones.
	PkgPath string
}

// GoldenCase binds an analyzer to its fixture packages, in
// type-checking order (later packages may import earlier ones).
type GoldenCase struct {
	Analyzer *Analyzer
	// Root is the directory under testdata/src.
	Root string
	Pkgs []FixturePkg
}

// GoldenCases returns every analyzer's golden fixture, in suite order.
func GoldenCases() []GoldenCase {
	return []GoldenCase{
		{DeterminismAnalyzer, "determinism", []FixturePkg{{"", "repro/internal/population"}}},
		{WireSafetyAnalyzer, "wiresafety", []FixturePkg{{"", "repro/internal/dnswire"}}},
		{ErrDiscardAnalyzer, "errdiscard", []FixturePkg{{"", "repro/internal/lintfixture"}}},
		{CopyLockAnalyzer, "copylock", []FixturePkg{{"", "repro/internal/lintfixture"}}},
		{RFCConstAnalyzer, "rfcconst", []FixturePkg{{"", "repro/internal/dnswire"}}},
		{DeterTaintAnalyzer, "detertaint", []FixturePkg{
			{"scanlib", "repro/internal/scanlib"},
			{"core", "repro/internal/core"},
		}},
		{GoLeakAnalyzer, "goleak", []FixturePkg{{"", "repro/internal/lintfixture"}}},
		{LockOrderAnalyzer, "lockorder", []FixturePkg{{"", "repro/internal/lintfixture"}}},
		{CtxPropAnalyzer, "ctxprop", []FixturePkg{
			{"iolib", "repro/internal/iolib"},
			{"svc", "repro/internal/svc"},
		}},
		{WireTaintAnalyzer, "wiretaint", []FixturePkg{
			{"wire", "repro/internal/dnswire"},
			{"srv", "repro/internal/srv"},
		}},
		{MergePurityAnalyzer, "mergepurity", []FixturePkg{{"", "repro/internal/mergefix"}}},
		{HotPathAllocAnalyzer, "hotpathalloc", []FixturePkg{{"", "repro/internal/hotfix"}}},
		{BufAliasAnalyzer, "bufalias", []FixturePkg{{"", "repro/internal/buffix"}}},
		{PoolSafeAnalyzer, "poolsafe", []FixturePkg{{"", "repro/internal/poolfix"}}},
	}
}

// FixtureReport is the outcome of checking one golden fixture — the
// JSON shape `reprolint -selfcheck` publishes per analyzer.
type FixtureReport struct {
	Analyzer string `json:"analyzer"`
	Fixture  string `json:"fixture"`
	// Findings is how many diagnostics the analyzer produced.
	Findings int `json:"findings"`
	// Missing lists want markers no diagnostic matched; Unexpected
	// lists diagnostics no want marker expected. Both empty == pass.
	Missing    []string `json:"missing"`
	Unexpected []string `json:"unexpected"`
	// ElapsedMS is the analyzer's run time over the type-checked
	// fixture (loading and type-checking excluded).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// OK reports whether the fixture check passed.
func (r FixtureReport) OK() bool {
	return len(r.Missing) == 0 && len(r.Unexpected) == 0
}

var wantMarkerRE = regexp.MustCompile("// want `([^`]+)`")

// fixtureWant is one expectation: a regex anchored to a file:line.
type fixtureWant struct {
	re      *regexp.Regexp
	matched bool
}

// fixtureWants maps file -> line -> expectation.
type fixtureWants map[string]map[int]*fixtureWant

// fixtureImporter resolves a fixture's own fake import paths to the
// already-checked packages and defers everything else to the
// export-data importer for the standard library.
type fixtureImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	if fi.std == nil {
		return nil, fmt.Errorf("fixture imports %q but no standard importer is configured", path)
	}
	return fi.std.Import(path)
}

// parseFixtureDir parses every .go file in srcDir, collecting want
// markers into wants and import paths into imports.
func parseFixtureDir(fset *token.FileSet, srcDir string, wants fixtureWants, imports map[string]bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(srcDir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarkerRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regex %q: %v", path, m[1], err)
				}
				pos := fset.Position(c.Pos())
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int]*fixtureWant{}
				}
				wants[pos.Filename][pos.Line] = &fixtureWant{re: re}
			}
		}
	}
	return files, nil
}

// loadFixture parses and type-checks one golden case rooted at
// testdataDir (the directory holding src/).
func loadFixture(testdataDir string, gc GoldenCase) ([]*Package, fixtureWants, error) {
	fset := token.NewFileSet()
	wants := fixtureWants{}
	imported := map[string]bool{}
	filesByPkg := make([][]*ast.File, len(gc.Pkgs))
	for i, fx := range gc.Pkgs {
		srcDir := filepath.Join(testdataDir, "src", gc.Root, fx.Subdir)
		files, err := parseFixtureDir(fset, srcDir, wants, imported)
		if err != nil {
			return nil, nil, err
		}
		filesByPkg[i] = files
	}

	var stdPaths []string
	for p := range imported {
		isLocal := false
		for _, fx := range gc.Pkgs {
			if p == fx.PkgPath {
				isLocal = true
			}
		}
		if !isLocal {
			stdPaths = append(stdPaths, p)
		}
	}
	sort.Strings(stdPaths)
	var std types.Importer
	if len(stdPaths) > 0 {
		var err error
		std, err = StdImporter(fset, stdPaths...)
		if err != nil {
			return nil, nil, err
		}
	}
	local := map[string]*types.Package{}
	conf := types.Config{Importer: &fixtureImporter{std: std, local: local}}

	var pkgs []*Package
	for i, fx := range gc.Pkgs {
		info := newInfo()
		tpkg, err := conf.Check(fx.PkgPath, fset, filesByPkg[i], info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking fixture package %s: %v", fx.PkgPath, err)
		}
		local[fx.PkgPath] = tpkg
		pkgs = append(pkgs, &Package{Path: fx.PkgPath, Fset: fset, Files: filesByPkg[i], Types: tpkg, Info: info})
	}
	return pkgs, wants, nil
}

// RunFixture type-checks one golden case and returns the raw
// diagnostics of its analyzer, for tests asserting on specific
// messages beyond the want-marker contract.
func RunFixture(testdataDir string, gc GoldenCase) ([]Diagnostic, error) {
	pkgs, _, err := loadFixture(testdataDir, gc)
	if err != nil {
		return nil, err
	}
	return Run(pkgs, []*Analyzer{gc.Analyzer}), nil
}

// CheckFixture runs one golden case and compares diagnostics against
// the want markers. The error covers infrastructure failures (missing
// fixture, type-check errors); expectation mismatches are reported in
// the FixtureReport, not the error.
func CheckFixture(testdataDir string, gc GoldenCase) (FixtureReport, error) {
	rep := FixtureReport{Analyzer: gc.Analyzer.Name, Fixture: gc.Root}
	pkgs, wants, err := loadFixture(testdataDir, gc)
	if err != nil {
		return rep, err
	}
	start := time.Now()
	diags := Run(pkgs, []*Analyzer{gc.Analyzer})
	rep.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	rep.Findings = len(diags)
	for _, d := range diags {
		w := wants[d.Pos.Filename][d.Pos.Line]
		if w == nil {
			rep.Unexpected = append(rep.Unexpected, d.String())
			continue
		}
		if !w.re.MatchString(d.Message) {
			rep.Unexpected = append(rep.Unexpected,
				fmt.Sprintf("%s (want marker on this line expects %q)", d.String(), w.re))
			continue
		}
		w.matched = true
	}
	var missing []string
	for file, byLine := range wants {
		for line, w := range byLine {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s:%d: want %q", file, line, w.re))
			}
		}
	}
	sort.Strings(missing)
	rep.Missing = missing
	return rep, nil
}

// SelfCheck checks every golden fixture and returns the per-analyzer
// reports in suite order. The error is the first infrastructure
// failure; expectation mismatches live in the reports.
func SelfCheck(testdataDir string) ([]FixtureReport, error) {
	var out []FixtureReport
	for _, gc := range GoldenCases() {
		rep, err := CheckFixture(testdataDir, gc)
		if err != nil {
			return out, fmt.Errorf("%s: %v", gc.Root, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
