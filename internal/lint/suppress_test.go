package lint_test

import (
	"encoding/json"
	"go/token"
	"reflect"
	"testing"

	"repro/internal/lint"
)

func fakeDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{Analyzer: "wiresafety", Pos: token.Position{Filename: "internal/dnswire/rdata.go", Line: 10, Column: 3}, Message: "unguarded index"},
		{Analyzer: "errdiscard", Pos: token.Position{Filename: "internal/netsim/udp.go", Line: 20, Column: 2}, Message: "dropped error"},
		{Analyzer: "rfcconst", Pos: token.Position{Filename: "cmd/nsec3scan/main.go", Line: 30, Column: 1}, Message: "magic number"},
	}
}

func TestParseExcludes(t *testing.T) {
	if got := lint.ParseExcludes(""); got != nil {
		t.Errorf("ParseExcludes(%q) = %v, want nil", "", got)
	}
	got := lint.ParseExcludes(" internal/netsim , ,rdata.go,")
	want := []string{"internal/netsim", "rdata.go"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseExcludes = %v, want %v", got, want)
	}
}

func TestSuppress(t *testing.T) {
	diags := fakeDiags()
	if got := lint.Suppress(diags, nil); len(got) != 3 {
		t.Errorf("no excludes: kept %d diagnostics, want 3", len(got))
	}
	got := lint.Suppress(diags, []string{"internal/netsim"})
	if len(got) != 2 {
		t.Fatalf("suppressing internal/netsim: kept %d diagnostics, want 2", len(got))
	}
	for _, d := range got {
		if d.Pos.Filename == "internal/netsim/udp.go" {
			t.Errorf("diagnostic in excluded path survived: %s", d)
		}
	}
	if got := lint.Suppress(diags, []string{"rdata.go", "cmd/"}); len(got) != 1 || got[0].Analyzer != "errdiscard" {
		t.Errorf("multi-fragment suppression kept %v, want only the errdiscard finding", got)
	}
}

// TestJSONShape pins the -json wire format: an array (never null) of
// objects with exactly the analyzer/file/line/column/message keys.
func TestJSONShape(t *testing.T) {
	empty, err := json.Marshal(lint.ToJSON(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]" {
		t.Errorf("empty diagnostics encode as %s, want []", empty)
	}

	out, err := json.Marshal(lint.ToJSON(fakeDiags()[:1]))
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d entries, want 1", len(decoded))
	}
	want := map[string]any{
		"analyzer": "wiresafety",
		"file":     "internal/dnswire/rdata.go",
		"line":     float64(10),
		"column":   float64(3),
		"message":  "unguarded index",
	}
	if !reflect.DeepEqual(decoded[0], want) {
		t.Errorf("JSON entry = %v, want %v", decoded[0], want)
	}
}
