package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireTaintAnalyzer generalizes wiresafety from local syntax to
// interprocedural flows. wiresafety proves every index into a wire
// buffer inside the codec packages is dominated by a len() guard;
// wiretaint proves the *lengths and offsets decoded from those
// buffers* never size an allocation, bound a loop, or index a slice —
// anywhere in the repo — without a dominating bounds guard. That is
// the Gruza-style adversarial-input surface: a 4-byte length field an
// attacker sets to 2^31 must hit a comparison before it hits make().
//
// Taint enters at:
//   - every []byte parameter of every function declared in
//     internal/dnswire or internal/nsec3 (the codec boundary — each
//     function re-seeds, so taint is never lost to a field store);
//   - any buffer filled by a net read (conn.Read, pc.ReadFrom) or an
//     io fill (io.ReadFull, io.ReadAtLeast) anywhere in the repo.
//
// Taint flows through assignments, arithmetic, conversions, slicing
// of a tainted buffer, and values decoded out of one (indexing, the
// encoding/binary Uint* readers) — and across call edges into the
// matching parameter of a statically-resolved callee, with the call
// site recorded so reports carry the full chain from entry point to
// sink.
//
// Taint dies at:
//   - narrow types: a value of type uint8/int8/uint16/int16/bool is
//     bounded by its width (a uint16 can size at most a 64 KiB make —
//     the size of the message the attacker already sent), so
//     `make([]byte, rdlen)` with rdlen uint16 and `int(rdlen)` are
//     clean;
//   - len()/cap() results: bounded by memory the process holds;
//   - a dominating bounds guard: an if whose condition compares the
//     tainted integer (the decoder-cursor idiom
//     `if n < 0 || d.off+n > d.end { return ... }` sanitizes n for
//     the statements after an early exit, and inside the guarded
//     body). Guards sanitize integers only — a sliced buffer stays
//     tainted because its *contents* are still attacker-chosen.
//
// The waiver is //repro:wiretrusted <reason> on the declaration. It
// silences the waived function's own sinks but does NOT stop
// propagation: tainted arguments it passes onward still taint the
// callee, so a waiver can never launder attacker bytes for the rest
// of the call tree. A bare directive without a reason is a finding.
var WireTaintAnalyzer = &Analyzer{
	Name: "wiretaint",
	Doc: "forward-propagate taint from untrusted network bytes ([]byte " +
		"codec parameters, net/io read buffers) into make-size, " +
		"slice-index, slice-bound, and loop-bound sinks lacking a " +
		"dominating bounds guard, across the cross-package call graph",
	RunProject: runWireTaint,
}

// wiretaintSourcePkgs are the package suffixes whose []byte parameters
// are untrusted by definition: the wire codec boundary.
var wiretaintSourcePkgs = []string{"internal/dnswire", "internal/nsec3"}

// wtProv records how a node's parameters became tainted: through
// which caller (nil at a root) and, at roots, why.
type wtProv struct {
	from *CallNode
	root string
}

type wireTaint struct {
	pass *ProjectPass
	g    *CallGraph
	// params holds the tainted parameter objects per node (the node's
	// own signature objects).
	params map[*CallNode]map[*types.Var]bool
	prov   map[*CallNode]wtProv
	queue  []*CallNode
	queued map[*CallNode]bool
	// reported dedupes sink reports across re-analyses of a node.
	reported map[token.Pos]bool
}

func runWireTaint(pass *ProjectPass) {
	g := pass.Project.Graph
	w := &wireTaint{
		pass:     pass,
		g:        g,
		params:   make(map[*CallNode]map[*types.Var]bool),
		prov:     make(map[*CallNode]wtProv),
		queued:   make(map[*CallNode]bool),
		reported: make(map[token.Pos]bool),
	}

	// Directive hygiene.
	for _, node := range g.Nodes {
		if reason, ok := node.Directive(WireTrustedDirective); ok && reason == "" {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s directive without a reason; state why these wire-derived values are bounded", WireTrustedDirective)
		}
	}

	// Roots: []byte parameters at the codec boundary. Every declared
	// node is queued once regardless, so read-buffer taint (discovered
	// inside bodies) is analyzed too.
	for _, node := range g.Nodes {
		if node.Func == nil || node.Decl == nil {
			continue
		}
		if wtSourcePkg(node.Pkg.Path) {
			sig := node.Func.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if isByteSliceType(p.Type()) {
					w.taintParam(node, p, nil, "untrusted wire bytes")
				}
			}
		}
		w.enqueue(node)
	}

	// Worklist: re-analyze a node whenever a new parameter of it is
	// tainted. Taint sets only grow, so this terminates.
	for len(w.queue) > 0 {
		node := w.queue[0]
		w.queue = w.queue[1:]
		w.queued[node] = false
		w.analyze(node)
	}
}

func wtSourcePkg(path string) bool {
	for _, p := range wiretaintSourcePkgs {
		if pathSuffixMatch(path, p) {
			return true
		}
	}
	return false
}

func wireTrusted(node *CallNode) bool {
	r, ok := node.Directive(WireTrustedDirective)
	return ok && r != ""
}

func isByteSliceType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// wtNarrow reports whether a value of type t is bounded by its width
// alone: at most 16 bits of attacker control cannot size a harmful
// allocation or loop.
func wtNarrow(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Bool, types.UntypedBool, types.Int8, types.Int16, types.Uint8, types.Uint16:
		return true
	}
	return false
}

func (w *wireTaint) enqueue(node *CallNode) {
	if node == nil || w.queued[node] {
		return
	}
	w.queued[node] = true
	w.queue = append(w.queue, node)
}

// taintParam marks one parameter of node tainted and records the
// provenance (first writer wins: BFS-ish shortest chains).
func (w *wireTaint) taintParam(node *CallNode, p *types.Var, from *CallNode, root string) {
	set := w.params[node]
	if set == nil {
		set = make(map[*types.Var]bool)
		w.params[node] = set
	}
	if set[p] {
		return
	}
	set[p] = true
	if _, ok := w.prov[node]; !ok {
		w.prov[node] = wtProv{from: from, root: root}
	}
	w.enqueue(node)
}

// analyze runs the intra-procedural pass over one declared function:
// fixpoint taint of locals, then a flow walk tracking guards,
// reporting sinks, and propagating taint into callees. Function
// literals share the enclosing scope and are walked inline.
func (w *wireTaint) analyze(node *CallNode) {
	body := node.Body()
	if body == nil {
		return
	}
	info := node.Pkg.Info

	tainted := make(map[types.Object]bool)
	for p := range w.params[node] {
		tainted[p] = true
	}

	// Read-buffer sources: the argument a net read or io fill writes
	// attacker bytes into.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		var bufArg ast.Expr
		switch fn.Pkg().Path() {
		case "net":
			switch fn.Name() {
			case "Read", "ReadFrom", "ReadFromUDP", "ReadMsgUDP":
				if len(call.Args) > 0 {
					bufArg = call.Args[0]
				}
			}
		case "io":
			switch fn.Name() {
			case "ReadFull", "ReadAtLeast":
				if len(call.Args) > 1 {
					bufArg = call.Args[1]
				}
			}
		}
		if id, ok := ast.Unparen(bufArg).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && !tainted[obj] {
				tainted[obj] = true
				if _, seen := w.prov[node]; !seen {
					w.prov[node] = wtProv{root: "network read buffer"}
				}
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	// Fixpoint: assignments spread taint to locals.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || tainted[obj] || wtNarrow(obj.Type()) {
					continue
				}
				if wtExprTainted(info, as.Rhs[i], tainted, nil) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Flow walk: guards, sinks, callee propagation.
	w.walkStmts(node, body.List, tainted, make(map[types.Object]bool))
}

// wtExprTainted reports whether e evaluates to an attacker-influenced
// value, given the tainted object set minus guard-sanitized integers.
func wtExprTainted(info *types.Info, e ast.Expr, tainted, guarded map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && tainted[obj] && !guarded[obj] && !wtNarrow(obj.Type())
	case *ast.IndexExpr:
		// A value read out of a tainted buffer is attacker-chosen —
		// unless its type is too narrow to matter.
		return wtExprTainted(info, e.X, tainted, guarded) && !wtNarrow(info.TypeOf(e))
	case *ast.SliceExpr:
		// A slice of a tainted buffer still holds attacker bytes.
		return wtExprTainted(info, e.X, tainted, guarded)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false // booleans cannot size anything
		}
		return wtExprTainted(info, e.X, tainted, guarded) || wtExprTainted(info, e.Y, tainted, guarded)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return false
		}
		return wtExprTainted(info, e.X, tainted, guarded)
	case *ast.CallExpr:
		// Conversion: narrowing kills taint, widening preserves it.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 &&
				wtExprTainted(info, e.Args[0], tainted, guarded) &&
				!wtNarrow(info.TypeOf(e))
		}
		// len/cap results are bounded by memory already held.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return false
			}
		}
		// The encoding/binary readers decode attacker integers.
		if fn := calleeFunc(info, e); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "encoding/binary" && !wtNarrow(info.TypeOf(e)) {
			for _, arg := range e.Args {
				if wtExprTainted(info, arg, tainted, guarded) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// wtCondGuards collects the tainted integer objects a condition
// compares — the objects the if statement sanitizes.
func wtCondGuards(info *types.Info, cond ast.Expr, tainted map[types.Object]bool) []types.Object {
	var out []types.Object
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(sn ast.Node) bool {
				id, ok := sn.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || !tainted[obj] {
					return true
				}
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					out = append(out, obj)
				}
				return true
			})
		}
		return true
	})
	return out
}

// walkStmts walks a statement list in order, threading the guarded
// set, and reports whether the straight-line flow terminates early.
func (w *wireTaint) walkStmts(node *CallNode, stmts []ast.Stmt, tainted, guarded map[types.Object]bool) bool {
	info := node.Pkg.Info
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				w.walkStmts(node, []ast.Stmt{s.Init}, tainted, guarded)
			}
			w.checkExpr(node, s.Cond, tainted, guarded)
			condObjs := wtCondGuards(info, s.Cond, tainted)
			branchGuard := wtCloneGuards(guarded, condObjs)
			bodyTerm := w.walkStmts(node, s.Body.List, tainted, branchGuard)
			if s.Else != nil {
				w.walkStmts(node, []ast.Stmt{s.Else}, tainted, wtCloneGuards(guarded, condObjs))
			}
			if bodyTerm {
				// Early-exit guard: the comparison dominates the rest
				// of the block.
				for _, obj := range condObjs {
					guarded[obj] = true
				}
			}
		case *ast.ForStmt:
			if s.Init != nil {
				w.walkStmts(node, []ast.Stmt{s.Init}, tainted, guarded)
			}
			w.checkLoopBound(node, s.Cond, tainted, guarded)
			w.walkStmts(node, s.Body.List, tainted, wtCloneGuards(guarded, nil))
		case *ast.RangeStmt:
			w.checkExpr(node, s.X, tainted, guarded)
			w.walkStmts(node, s.Body.List, tainted, wtCloneGuards(guarded, nil))
		case *ast.BlockStmt:
			if w.walkStmts(node, s.List, tainted, guarded) {
				return true
			}
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.walkStmts(node, []ast.Stmt{s.Init}, tainted, guarded)
			}
			w.checkExpr(node, s.Tag, tainted, guarded)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkStmts(node, cc.Body, tainted, wtCloneGuards(guarded, nil))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkStmts(node, cc.Body, tainted, wtCloneGuards(guarded, nil))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.walkStmts(node, cc.Body, tainted, wtCloneGuards(guarded, nil))
				}
			}
		case *ast.LabeledStmt:
			if w.walkStmts(node, []ast.Stmt{s.Stmt}, tainted, guarded) {
				return true
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				w.checkExpr(node, r, tainted, guarded)
			}
			return true
		case *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			w.checkExpr(node, s.X, tainted, guarded)
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				w.checkExpr(node, e, tainted, guarded)
			}
			for _, e := range s.Lhs {
				w.checkExpr(node, e, tainted, guarded)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							w.checkExpr(node, v, tainted, guarded)
						}
					}
				}
			}
		case *ast.GoStmt:
			w.checkExpr(node, s.Call, tainted, guarded)
		case *ast.DeferStmt:
			w.checkExpr(node, s.Call, tainted, guarded)
		case *ast.SendStmt:
			w.checkExpr(node, s.Chan, tainted, guarded)
			w.checkExpr(node, s.Value, tainted, guarded)
		case *ast.IncDecStmt:
			w.checkExpr(node, s.X, tainted, guarded)
		}
	}
	return false
}

func wtCloneGuards(guarded map[types.Object]bool, extra []types.Object) map[types.Object]bool {
	out := make(map[types.Object]bool, len(guarded)+len(extra))
	for k := range guarded {
		out[k] = true
	}
	for _, k := range extra {
		out[k] = true
	}
	return out
}

// checkLoopBound reports a for-loop condition bounded by a tainted,
// unguarded wire value — the CPU-exhaustion shape.
func (w *wireTaint) checkLoopBound(node *CallNode, cond ast.Expr, tainted, guarded map[types.Object]bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return
	}
	info := node.Pkg.Info
	for _, side := range []ast.Expr{be.X, be.Y} {
		if wtExprTainted(info, side, tainted, guarded) {
			w.reportSink(node, be.Pos(),
				"loop bounded by an untrusted wire value")
			return
		}
	}
}

// checkExpr inspects one expression tree for sinks (make sizes, slice
// indices/bounds) and propagates taint into statically-resolved
// callees. Function literals are walked inline: they share the
// enclosing scope.
func (w *wireTaint) checkExpr(node *CallNode, e ast.Expr, tainted, guarded map[types.Object]bool) {
	if e == nil {
		return
	}
	info := node.Pkg.Info
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if wtExprTainted(info, n.Index, tainted, guarded) {
				w.reportSink(node, n.Pos(),
					"slice index derived from untrusted wire bytes")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil && wtExprTainted(info, bound, tainted, guarded) {
					w.reportSink(node, n.Pos(),
						"slice bound derived from untrusted wire bytes")
					break
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if wtExprTainted(info, arg, tainted, guarded) {
							w.reportSink(node, n.Pos(),
								"make sized from untrusted wire bytes")
							break
						}
					}
				}
			}
			w.propagateCall(node, n, tainted, guarded)
		}
		return true
	})
}

// propagateCall taints the matching parameters of a statically
// resolved project callee. Waivers do not stop this: taint flows
// through a //repro:wiretrusted function into everything it calls.
func (w *wireTaint) propagateCall(node *CallNode, call *ast.CallExpr, tainted, guarded map[types.Object]bool) {
	info := node.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	callee := w.g.FuncNode(fn)
	if callee == nil || callee.Func == nil {
		return
	}
	sig := callee.Func.Type().(*types.Signature)
	nparams := sig.Params().Len()
	if nparams == 0 {
		return
	}
	// Method-value calls (x.M(a)): call.Args align with the params.
	for i, arg := range call.Args {
		if !wtExprTainted(info, arg, tainted, guarded) {
			continue
		}
		pi := i
		if pi >= nparams {
			pi = nparams - 1 // variadic tail
		}
		p := sig.Params().At(pi)
		if wtNarrow(p.Type()) {
			continue
		}
		w.taintParam(callee, p, node, "")
	}
}

// reportSink records one finding at pos, with the full chain from the
// taint's entry point, unless the function is waived.
func (w *wireTaint) reportSink(node *CallNode, pos token.Pos, what string) {
	if wireTrusted(node) || w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(node.Pkg.Fset, pos,
		"%s without a dominating bounds guard: %s; compare against len() (or the decoder cursor) before use, or annotate with %s <reason>",
		what, w.chain(node), WireTrustedDirective)
}

// chain renders the taint path from entry point to the sink function,
// e.g. "untrusted wire bytes → dnswire.Unpack → dnswire.parseRData".
func (w *wireTaint) chain(node *CallNode) string {
	var names []string
	root := "untrusted wire bytes"
	seen := map[*CallNode]bool{}
	for n := node; n != nil && !seen[n]; {
		seen[n] = true
		names = append([]string{n.Name()}, names...)
		p, ok := w.prov[n]
		if !ok {
			break
		}
		if p.from == nil {
			if p.root != "" {
				root = p.root
			}
			break
		}
		n = p.from
	}
	return root + " → " + strings.Join(names, " → ")
}
