package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufAliasAnalyzer flags []byte aliases that outlive the window their
// backing memory is valid for. Three buffer classes are tracked, each
// with its own validity window:
//
//   - caller-provided buffers ([]byte and *[]byte parameters): valid
//     for the duration of the call. Returning a subslice, or storing
//     one somewhere that survives the call (a receiver field, a
//     package-level variable, a channel), hands the caller's memory to
//     code that will read it after the caller has moved on — the
//     recycled-buffer serving path rewrites that memory on the very
//     next packet.
//   - pooled buffers (sync.Pool Get results): valid until the matching
//     Put. Any store that survives the function (whole or subslice) is
//     flagged; poolsafe checks the Put discipline itself, bufalias
//     checks that no alias survives it.
//   - loop-read buffers (declared outside a loop, filled by a net or
//     io read inside it): valid for one iteration. Handing the buffer
//     or a subslice to a goroutine, a channel, or a growing slice from
//     inside the loop races with the next iteration's read.
//
// The analysis is intra-procedural and deliberately shallow: aliases
// are tracked through plain assignments, derefs, and slice
// expressions only — not through struct fields or call results — so a
// finding is near-certain to be real. Functions carrying a reasoned
// //repro:allocok waiver are skipped entirely.
var BufAliasAnalyzer = &Analyzer{
	Name: "bufalias",
	Doc: "subslices of caller-provided, pooled, or loop-read buffers " +
		"must not outlive their reuse window",
	Run: runBufAlias,
}

// bufOrigin classifies where a tracked buffer's memory comes from.
type bufOrigin int

const (
	originParam bufOrigin = iota
	originPooled
)

func (o bufOrigin) String() string {
	if o == originPooled {
		return "pooled"
	}
	return "caller-provided"
}

// bufInfo is the tracking record of one buffer variable: its origin,
// and whether this variable is already a subslice of the original.
type bufInfo struct {
	origin bufOrigin
	sub    bool
}

func runBufAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if reason, ok := parseDirectives(fd.Doc)[AllocOKDirective]; ok && reason != "" {
				continue
			}
			a := &bufAliaser{pass: pass, info: pass.Info, bufs: map[types.Object]bufInfo{}}
			a.seedParams(fd)
			a.walkBody(fd)
		}
	}
}

type bufAliaser struct {
	pass *Pass
	info *types.Info
	bufs map[types.Object]bufInfo
	// fnScope holds the parameter/receiver objects of the current
	// function: stores into THEIR fields survive the call.
	fnScope map[types.Object]bool
}

// isByteSliceOrPtr reports whether t is []byte or *[]byte (pooled
// buffers are typically stored behind a pointer to avoid boxing the
// header on Put).
func isByteSliceOrPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// seedParams registers every []byte / *[]byte parameter as a
// caller-provided buffer and records the function's param/receiver
// objects.
func (a *bufAliaser) seedParams(fd *ast.FuncDecl) {
	a.fnScope = map[types.Object]bool{}
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := a.info.Defs[name]
				if obj == nil {
					continue
				}
				a.fnScope[obj] = true
				if isByteSliceOrPtr(obj.Type()) {
					a.bufs[obj] = bufInfo{origin: originParam}
				}
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
}

// bufRoot resolves an expression to a tracked buffer, unwrapping
// parens, derefs, and slice expressions. sub reports whether any slice
// expression was crossed (the result aliases part of the buffer rather
// than being the variable itself).
func (a *bufAliaser) bufRoot(e ast.Expr) (obj types.Object, info bufInfo, sub, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			sub = true
			e = x.X
		case *ast.Ident:
			o := a.info.Uses[x]
			if o == nil {
				return nil, bufInfo{}, false, false
			}
			bi, tracked := a.bufs[o]
			return o, bi, sub || bi.sub, tracked
		default:
			return nil, bufInfo{}, false, false
		}
	}
}

// walkBody runs the alias scan over the function body in source order:
// assignments extend the tracked set, sinks report.
func (a *bufAliaser) walkBody(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			a.assign(s)
		case *ast.ReturnStmt:
			a.checkReturn(s)
		case *ast.SendStmt:
			if obj, bi, sub, ok := a.bufRoot(s.Value); ok && (sub || bi.origin == originPooled) {
				a.pass.Reportf(s.Value.Pos(),
					"%s of the %s buffer %s is sent on a channel; the receiver reads it after the buffer is reused — copy before sending",
					aliasNoun(sub), bi.origin, obj.Name())
			}
		case *ast.ForStmt:
			a.checkLoopReads(s.Body, s.Pos())
		case *ast.RangeStmt:
			a.checkLoopReads(s.Body, s.Pos())
		}
		return true
	})
}

// aliasNoun names what escaped: the buffer itself or a subslice of it.
func aliasNoun(sub bool) string {
	if sub {
		return "a subslice"
	}
	return "the whole"
}

// assign extends tracking through plain copies/derivations and flags
// stores that survive the call.
func (a *bufAliaser) assign(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		rhs := s.Rhs[i]
		// New pooled buffers: bp := pool.Get().(*[]byte).
		if isSyncPoolGet(a.info, rhs) {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := a.info.Defs[id]; obj != nil && isByteSliceOrPtr(obj.Type()) {
					a.bufs[obj] = bufInfo{origin: originPooled}
				}
			}
			continue
		}
		obj, bi, sub, tracked := a.bufRoot(rhs)
		if !tracked {
			continue
		}
		// Propagate through a plain local copy: y := x, y := x[i:j].
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			var lobj types.Object = a.info.Defs[id]
			if lobj == nil {
				lobj = a.info.Uses[id]
			}
			if lobj == nil {
				continue
			}
			// A store into a package-level variable survives every call.
			if lobj.Parent() != nil && lobj.Parent().Parent() == types.Universe {
				a.pass.Reportf(lhs.Pos(),
					"%s of the %s buffer %s is stored in package-level variable %s and outlives the call — copy it instead",
					aliasNoun(sub), bi.origin, obj.Name(), lobj.Name())
				continue
			}
			a.bufs[lobj] = bufInfo{origin: bi.origin, sub: sub}
			continue
		}
		// Stores through fields/indexes of the function's own
		// parameters or receiver survive the call; whole-parameter
		// stores (constructor idiom) are exempt, pooled buffers and
		// subslices are not.
		if !sub && bi.origin == originParam {
			continue
		}
		if root, kind := a.storeTarget(lhs); root != nil {
			a.pass.Reportf(lhs.Pos(),
				"%s of the %s buffer %s is stored in %s %s and outlives the call — copy it instead",
				aliasNoun(sub), bi.origin, obj.Name(), kind, root.Name())
		}
	}
}

// storeTarget classifies an assignment LHS whose written-to memory
// survives the current call: a field or element reached from a
// parameter or the receiver, or from a package-level variable. Writes
// through locals are invisible escapes only if the local itself
// escapes, which is beyond this analysis — they are accepted.
func (a *bufAliaser) storeTarget(lhs ast.Expr) (types.Object, string) {
	e := lhs
	crossed := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
			crossed = true
		case *ast.SelectorExpr:
			e = x.X
			crossed = true
		case *ast.IndexExpr:
			e = x.X
			crossed = true
		case *ast.Ident:
			obj := a.info.Uses[e.(*ast.Ident)]
			if obj == nil || !crossed {
				return nil, ""
			}
			if a.fnScope[obj] {
				return obj, "a field of"
			}
			if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
				return obj, "package-level"
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// checkReturn flags returned subslices of tracked buffers. Whole
// caller-provided buffers may be returned (append-style APIs);
// anything pooled, and any subslice of a parameter, hands out memory
// the function no longer controls.
func (a *bufAliaser) checkReturn(s *ast.ReturnStmt) {
	for _, r := range s.Results {
		obj, bi, sub, ok := a.bufRoot(r)
		if !ok {
			continue
		}
		if bi.origin == originPooled {
			a.pass.Reportf(r.Pos(),
				"%s of the pooled buffer %s is returned; after Put the pool hands this memory to another goroutine — copy it or return before Put",
				aliasNoun(sub), obj.Name())
			continue
		}
		if sub {
			a.pass.Reportf(r.Pos(),
				"a subslice of the caller-provided buffer %s is returned; the caller may recycle the buffer while the alias is live — document the aliasing or copy",
				obj.Name())
		}
	}
}

// readCallTarget matches a read-into-buffer call (net.Conn Read,
// PacketConn ReadFrom*, io.ReadFull/ReadAtLeast) and returns the
// buffer argument expression, or nil.
func readCallTarget(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	switch fn.Name() {
	case "Read", "ReadFrom", "ReadFromUDP", "ReadMsgUDP":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || len(call.Args) == 0 {
			return nil
		}
		if !isByteSliceOrPtr(sig.Params().At(0).Type()) {
			return nil
		}
		return call.Args[0]
	case "ReadFull", "ReadAtLeast":
		if fn.Pkg() == nil || fn.Pkg().Path() != "io" || len(call.Args) < 2 {
			return nil
		}
		return call.Args[1]
	}
	return nil
}

// checkLoopReads finds buffers declared before the loop that a read
// call refills inside it, then flags escapes of those buffers from
// within the loop body: goroutine arguments, function-literal
// captures, channel sends, and growing-slice appends all retain the
// alias into the next iteration's read.
func (a *bufAliaser) checkLoopReads(body *ast.BlockStmt, loopPos token.Pos) {
	reused := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target := readCallTarget(a.info, call)
		if target == nil {
			return true
		}
		if obj := rootIdentObj(a.info, target); obj != nil && obj.Pos() < loopPos && isByteSliceOrPtr(obj.Type()) {
			reused[obj] = true
		}
		return true
	})
	if len(reused) == 0 {
		return
	}
	escape := func(e ast.Node, how string) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := a.info.Uses[id]; obj != nil && reused[obj] {
				a.pass.Reportf(id.Pos(),
					"read buffer %s is refilled every iteration of this loop but %s; the alias races with the next read — copy the bytes first",
					obj.Name(), how)
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				escape(arg, "escapes to a goroutine")
			}
			escape(s.Call.Fun, "escapes to a goroutine")
			return false
		case *ast.SendStmt:
			escape(s.Value, "is sent on a channel")
			return false
		case *ast.FuncLit:
			escape(s.Body, "is captured by a function literal")
			return false
		case *ast.CallExpr:
			// msgs = append(msgs, buf[:n]) retains the header; a spread
			// append(dst, buf...) copies the bytes and is clean.
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "append" &&
				s.Ellipsis == token.NoPos {
				if _, isBuiltin := a.info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				for _, arg := range s.Args[1:] {
					if isByteSliceOrPtr(a.info.TypeOf(arg)) {
						escape(arg, "is retained by a growing slice")
					}
				}
			}
		}
		return true
	})
}

// rootIdentObj resolves an expression through parens, derefs, and
// slices to its root identifier's object.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}
