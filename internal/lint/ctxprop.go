package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxPropAnalyzer enforces the cancellation contract the distributed
// survey and the resolver study depend on: every function on a call
// path to blocking I/O must accept a context.Context, so a stuck
// socket or a slow singleflight can always be abandoned from the top
// of the stack. Three rules, all over the cross-package call graph:
//
//  1. A declared function from which a blocking operation — a net
//     dial/listen/accept/read/write, an io.ReadFull/Copy/ReadAll, or a
//     bare send/receive on a struct{} channel (the semaphore and
//     singleflight idiom) — is reachable must have a context.Context
//     parameter. The report carries the full call chain down to the
//     blocking site.
//  2. context.Background() / context.TODO() are reserved for main
//     packages and tests: library code must derive its context from
//     the caller, never mint a root that disconnects cancellation.
//  3. A `for { select { ... } }` service loop must have a cancellation
//     case: a receive from a struct{} channel (ctx.Done() or a
//     shutdown channel). A select with a default clause polls and is
//     exempt.
//
// Channel operations inside select statements are not rule-1 seeds:
// a select is exactly how a blocking channel op acquires its
// cancellation case, and rule 3 polices loops that select without one.
//
// Propagation crosses call, go, defer, and closure edges. Dynamic
// (interface-dispatch) and ref edges are excluded: an interface call
// would inherit the union of every implementor's blocking behavior
// (one blocking io.Writer would condemn every fmt.Fprintf in the
// repo), and the interface boundary is where the signature itself —
// Handle(ctx, ...), Exchange(ctx, ...) — already carries the
// contract.
//
// The waiver is //repro:ctxexempt <reason> on the declaration. Like
// detertaint's sanctioned roots it absorbs: a function whose blocking
// is bounded by other means (a conn deadline, a CPU-bound signer, a
// lifecycle owned by a shutdown func) does not impose ctx on its
// callers. A bare directive without a reason is itself a finding.
var CtxPropAnalyzer = &Analyzer{
	Name: "ctxprop",
	Doc: "require a context.Context parameter on every call path to " +
		"blocking I/O (net reads/writes, io fills, struct{}-channel " +
		"semaphores), forbid context.Background outside main/tests, and " +
		"require a cancellation case in select service loops",
	RunProject: runCtxProp,
}

// ctxMark records how blocking-ness reached a node: through which
// callee (nil when the node itself blocks) toward which blocking site.
type ctxMark struct {
	next   *CallNode
	source taintSource
}

func runCtxProp(pass *ProjectPass) {
	g := pass.Project.Graph

	// Directive hygiene: a waiver without a reason is a finding, not a
	// waiver — exemptions must be reviewable.
	for _, node := range g.Nodes {
		if reason, ok := node.Directive(CtxExemptDirective); ok && reason == "" {
			pass.Reportf(node.Pkg.Fset, node.Pos(),
				"%s directive without a reason; state why this blocking path needs no context", CtxExemptDirective)
		}
	}

	// Seed pass: nodes whose own body blocks. Exempt nodes absorb
	// their own seeds and incoming marks alike.
	marks := map[*CallNode]ctxMark{}
	var queue []*CallNode
	for _, node := range g.Nodes {
		if ctxExempt(node) {
			continue
		}
		if src, ok := blockingSource(node); ok {
			marks[node] = ctxMark{source: src}
			queue = append(queue, node)
		}
	}

	// Backward propagation over call/go/defer/closure edges; BFS for
	// shortest chains.
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, e := range node.In {
			switch e.Kind {
			case EdgeCall, EdgeGo, EdgeDefer, EdgeClosure:
			default:
				continue
			}
			caller := e.Caller
			if _, seen := marks[caller]; seen || ctxExempt(caller) {
				continue
			}
			marks[caller] = ctxMark{next: node, source: marks[node].source}
			queue = append(queue, caller)
		}
	}

	// Rule 1 report: every declared, non-main, ctx-less function on a
	// blocking path. Literals inherit their encloser's parameters and
	// cannot be annotated, so they stay silent (the encloser reports).
	for _, node := range g.Nodes {
		mark, blocked := marks[node]
		if !blocked || node.Func == nil || node.Pkg.Types.Name() == "main" {
			continue
		}
		if hasCtxParam(node.Func) {
			continue
		}
		pass.Reportf(node.Pkg.Fset, node.Pos(),
			"%s is on a blocking path to %s without a context.Context parameter: %s; accept a ctx and thread it to the blocking call, or annotate with %s <reason>",
			node.Name(), mark.source.desc, ctxChainString(node, marks), CtxExemptDirective)
	}

	// Rules 2 and 3 are per-body; literals are their own nodes, so
	// every body in the repo is visited exactly once.
	for _, node := range g.Nodes {
		if node.Pkg.Types.Name() == "main" || ctxExemptOrEnclosed(node) {
			continue
		}
		checkCtxRoots(pass, node)
		checkSelectLoops(pass, node)
	}
}

// ctxExempt reports whether the node carries a usable ctxexempt
// directive (reason required).
func ctxExempt(node *CallNode) bool {
	r, ok := node.Directive(CtxExemptDirective)
	return ok && r != ""
}

// ctxExemptOrEnclosed extends the waiver to literals: a closure
// defined inside an exempt function shares its justification.
func ctxExemptOrEnclosed(node *CallNode) bool {
	for n := node; n != nil; {
		if ctxExempt(n) {
			return true
		}
		if n.Func != nil {
			return false
		}
		var encloser *CallNode
		for _, e := range n.In {
			if e.Kind == EdgeClosure {
				encloser = e.Caller
				break
			}
		}
		n = encloser
	}
	return false
}

// hasCtxParam reports whether fn's signature includes a
// context.Context parameter.
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isSignalChan reports whether t is a channel of struct{} — the
// semaphore / done-channel idiom whose bare sends and receives block
// until another goroutine acts.
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// blockingNetFuncs are the net package functions and methods whose
// call blocks on the network (or on kernel accept queues). Resolution
// is by name within package net, which covers both the concrete
// methods ((*UDPConn).ReadFrom) and the interface methods
// (net.Conn.Read, net.Listener.Accept).
var blockingNetFuncs = map[string]bool{
	"Dial": true, "DialContext": true, "DialTimeout": true,
	"Listen": true, "ListenPacket": true, "ListenUDP": true,
	"ListenTCP": true, "ListenIP": true, "ListenMulticastUDP": true,
	"Accept": true, "AcceptTCP": true, "AcceptUDP": true,
	"Read": true, "ReadFrom": true, "ReadFromUDP": true,
	"ReadMsgUDP": true, "Write": true, "WriteTo": true,
	"WriteToUDP": true, "WriteMsgUDP": true,
}

// blockingIOFuncs are the io package fill/drain helpers that loop on
// Read until satisfied.
var blockingIOFuncs = map[string]bool{
	"ReadFull": true, "ReadAtLeast": true, "Copy": true,
	"CopyN": true, "ReadAll": true,
}

// blockingSource returns the first blocking operation in node's own
// body (nested literals are their own nodes and seed separately).
func blockingSource(node *CallNode) (taintSource, bool) {
	body := node.Body()
	if body == nil {
		return taintSource{}, false
	}
	info := node.Pkg.Info

	// Channel ops inside select comm clauses are not seeds: the select
	// is the cancellation mechanism (rule 3 checks it has one).
	inComm := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		cc, ok := n.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			return true
		}
		inComm[cc.Comm] = true
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			inComm[ast.Unparen(s.X)] = true
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				inComm[ast.Unparen(rhs)] = true
			}
		case *ast.SendStmt:
			inComm[s] = true
		}
		return true
	})

	var found *taintSource
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "net":
				if blockingNetFuncs[fn.Name()] {
					found = &taintSource{desc: "net." + fn.Name(), pos: n.Pos()}
				}
			case "io":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && blockingIOFuncs[fn.Name()] {
					found = &taintSource{desc: "io." + fn.Name(), pos: n.Pos()}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm[n] && isSignalChan(info.TypeOf(n.X)) {
				found = &taintSource{desc: "a bare struct{}-channel receive", pos: n.Pos()}
			}
		case *ast.SendStmt:
			if !inComm[n] && isSignalChan(info.TypeOf(n.Chan)) {
				found = &taintSource{desc: "a bare struct{}-channel send (semaphore acquire)", pos: n.Pos()}
			}
		}
		return true
	})
	if found != nil {
		return *found, true
	}
	return taintSource{}, false
}

// ctxChainString renders the blocking chain from node to the blocking
// site, e.g. "(*Server).serveUDP → net.ReadFrom".
func ctxChainString(node *CallNode, marks map[*CallNode]ctxMark) string {
	var parts []string
	for n := node; n != nil; {
		parts = append(parts, n.Name())
		mark := marks[n]
		if mark.next == nil {
			parts = append(parts, mark.source.desc)
			break
		}
		n = mark.next
	}
	return strings.Join(parts, " → ")
}

// checkCtxRoots reports context.Background / context.TODO calls (rule
// 2): library code must inherit its context, not mint a root.
func checkCtxRoots(pass *ProjectPass, node *CallNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
			pass.Reportf(node.Pkg.Fset, call.Pos(),
				"context.%s in non-main code disconnects cancellation; thread the caller's ctx here (add a context.Context parameter if the function has none)",
				fn.Name())
		}
		return true
	})
}

// checkSelectLoops reports `for { select { ... } }` service loops with
// no cancellation case (rule 3): without a receive from a struct{}
// channel — ctx.Done() or a shutdown channel — nothing can stop the
// loop from the outside. Selects with a default clause poll rather
// than block and are exempt (goleak separately proves loop exits).
func checkSelectLoops(pass *ProjectPass, node *CallNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		ast.Inspect(loop.Body, func(inner ast.Node) bool {
			switch inner := inner.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				return false // nested loops judge their own selects
			case *ast.SelectStmt:
				if !selectHasCancellation(info, inner) {
					pass.Reportf(node.Pkg.Fset, inner.Pos(),
						"select loop in %s has no cancellation case; add `case <-ctx.Done():` (or a shutdown-channel receive) so the loop can be stopped",
						node.Name())
				}
				return false
			}
			return true
		})
		return true
	})
}

// selectHasCancellation reports whether sel has a default clause or a
// comm clause receiving from a struct{} channel.
func selectHasCancellation(info *types.Info, sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default: the select polls
		}
		var recvExpr ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recvExpr = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recvExpr = comm.Rhs[0]
			}
		}
		if unary, ok := ast.Unparen(recvExpr).(*ast.UnaryExpr); ok && unary.Op == token.ARROW {
			if isSignalChan(info.TypeOf(unary.X)) {
				return true
			}
		}
	}
	return false
}
