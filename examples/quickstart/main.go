// Quickstart: sign a zone with NSEC3, serve it authoritatively on a
// simulated network, query a non-existent name, and verify the denial
// proof the way a validating resolver does — the core mechanics the
// paper's measurements are built on, in one file.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build a small zone.
	apex := dnswire.MustParseName("example.org")
	z := zone.New(apex, 300)
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apex.MustChild("ns1"), RName: apex.MustChild("hostmaster"),
		Serial: 2024070601, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NS{Host: apex.MustChild("ns1")}})
	z.MustAdd(dnswire.RR{Name: apex.MustChild("ns1"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")}})
	z.MustAdd(dnswire.RR{Name: apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")}})

	// 2. Sign it with NSEC3 — RFC 9276-compliant parameters: zero
	// additional iterations, no salt.
	signed, err := z.Sign(zone.SignConfig{
		Denial:     zone.DenialNSEC3,
		NSEC3:      nsec3.Params{Iterations: 0},
		Inception:  1709251200, // 2024-03-01
		Expiration: 1717200000, // 2024-06-01
	})
	if err != nil {
		return err
	}
	ds, _ := signed.DSForChild()
	fmt.Printf("zone %s signed with NSEC3 (%s)\n", apex, signed.Config.NSEC3)
	fmt.Printf("DS for the parent: %s\n\n", ds)

	// 3. Serve it on a simulated network.
	net := netsim.NewNetwork(1)
	srv := authserver.New()
	srv.AddZone(signed)
	addr := netsim.Addr4(192, 0, 2, 53)
	net.Register(addr, srv)

	// 4. Query a name that does not exist, with DNSSEC OK.
	qname := dnswire.MustParseName("does-not-exist.example.org")
	query := dnswire.NewQuery(1, qname, dnswire.TypeA, true)
	resp, err := net.Exchange(context.Background(), addr, query)
	if err != nil {
		return err
	}
	fmt.Printf("query %s A →\n%s\n", qname, resp)

	// 5. Verify the NSEC3 closest-encloser proof like a resolver.
	set, err := nsec3.ExtractResponseSet(resp.Authority)
	if err != nil {
		return err
	}
	ce, nextCloser, err := set.VerifyNXDOMAIN(qname)
	if err != nil {
		return fmt.Errorf("proof rejected: %w", err)
	}
	fmt.Printf("NXDOMAIN proof verified: closest encloser %s, next closer covered by span ending %s\n",
		ce, nextCloser.RR.NextString())
	fmt.Printf("zone parameters seen by the resolver: %d additional iterations, %d-byte salt → RFC 9276 compliant: %v\n",
		set.Params.Iterations, len(set.Params.Salt), set.Params.RFC9276Compliant())
	return nil
}
