// Survey is a miniature §5.1: generate a calibrated synthetic domain
// universe, deploy it as real signed zones on a simulated Internet,
// scan every domain through a recursive resolver, and print the
// RFC 9276 compliance report with the Figure 1 distributions.
//
//	go run ./examples/survey [-n 5000] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/core"
)

func main() {
	n := flag.Int("n", 5000, "registered domains to generate and scan")
	seed := flag.Uint64("seed", 1, "universe seed")
	flag.Parse()

	report, err := core.RunSurvey(context.Background(), core.SurveyConfig{
		Registered: *n,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	agg := report.Agg
	fmt.Printf("scanned %d registered domains (%d scan errors)\n\n", agg.Total, report.ScanErrors)
	analysis.ShareTable(os.Stdout, "DNSSEC deployment:", []analysis.Bucket{
		{Label: "DNSSEC-enabled (DNSKEY returned)", Count: agg.DNSSECEnabled},
	}, agg.Total)
	analysis.ShareTable(os.Stdout, "of the DNSSEC-enabled:", []analysis.Bucket{
		{Label: "NSEC3-enabled (RFC 5155-consistent)", Count: agg.NSEC3Enabled},
		{Label: "plain NSEC", Count: agg.NSECUsed},
	}, agg.DNSSECEnabled)
	analysis.ShareTable(os.Stdout, "RFC 9276 compliance of the NSEC3-enabled:", []analysis.Bucket{
		{Label: "Item 2 OK: zero additional iterations", Count: agg.Item2OK},
		{Label: "Item 3 OK: no salt", Count: agg.Item3OK},
		{Label: "both items OK", Count: agg.BothOK},
		{Label: "opt-out flag set", Count: agg.OptOut},
	}, agg.NSEC3Enabled)
	fmt.Println()
	analysis.RenderCDF(os.Stdout, "additional iterations CDF",
		report.IterCDF, []int{0, 1, 5, 10, 25, 150, 500})
	fmt.Println()
	analysis.RenderCDF(os.Stdout, "salt length CDF (bytes)",
		report.SaltCDF, []int{0, 4, 8, 10, 45, 160})
	fmt.Println()
	fmt.Println("top name server operators (Table 2 style):")
	analysis.RenderOperatorTable(os.Stdout, report.Operators.Top(5))
	fmt.Printf("\nheadline: %.1f %% of NSEC3-enabled domains violate RFC 9276 Item 2 (paper: 87.8 %%)\n",
		100-compliance.Pct(agg.Item2OK, agg.NSEC3Enabled))
}
