// Zonewalk demonstrates why NSEC3 exists (paper §1/§2.2): an NSEC
// chain lets anyone enumerate a zone by following NextName pointers,
// while NSEC3 only leaks hashes — and then shows why RFC 9276 says the
// protection is thin anyway: a dictionary of predictable labels (www,
// api, mail…) cracks most hashed names no matter how many iterations
// the zone pays for.
//
//	go run ./examples/zonewalk
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

// The zone's "secret" subdomains — some guessable, one not.
var labels = []string{"www", "api", "mail", "ftp", "vpn", "staging", "xk77-secret-project"}

// The attacker's dictionary of predictable names.
var dictionary = []string{
	"www", "api", "mail", "ftp", "vpn", "ns1", "ns2", "staging",
	"dev", "test", "webmail", "smtp", "imap", "admin", "portal",
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildZone(denial zone.DenialMode, iterations uint16) (*zone.Signed, error) {
	apex := dnswire.MustParseName("victim.example")
	z := zone.New(apex, 300)
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apex.MustChild("ns1"), RName: apex.MustChild("hostmaster"),
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NS{Host: apex.MustChild("ns1")}})
	for i, l := range append([]string{"ns1"}, labels...) {
		z.MustAdd(dnswire.RR{Name: apex.MustChild(l), Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})}})
	}
	return z.Sign(zone.SignConfig{
		Denial:     denial,
		NSEC3:      nsec3.Params{Iterations: iterations, Salt: []byte{0xAB, 0xCD}},
		Inception:  1709251200,
		Expiration: 1717200000,
	})
}

func run() error {
	ctx := context.Background()

	// ---- Part 1: walking an NSEC zone.
	nsecZone, err := buildZone(zone.DenialNSEC, 0)
	if err != nil {
		return err
	}
	net := netsim.NewNetwork(1)
	srv := authserver.New()
	srv.AddZone(nsecZone)
	addr := netsim.Addr4(192, 0, 2, 53)
	net.Register(addr, srv)

	fmt.Println("== NSEC zone walk (victim.example, plain NSEC):")
	cur := dnswire.MustParseName("victim.example")
	for i := 0; i < 32; i++ {
		// Ask for a name just "after" cur to elicit the covering NSEC.
		probe := cur.MustChild("zzz-walker")
		q := dnswire.NewQuery(uint16(i), probe, dnswire.TypeA, true)
		resp, err := net.Exchange(ctx, addr, q)
		if err != nil {
			return err
		}
		var next dnswire.Name
		for _, rr := range resp.Authority {
			if nsec, ok := rr.Data.(dnswire.NSEC); ok && rr.Name == cur {
				next = nsec.NextName
				fmt.Printf("  %-28s → next: %-28s types: %s\n", rr.Name, next, nsec.Types)
			}
		}
		if next == "" || next == "victim.example." {
			break
		}
		cur = next
	}
	fmt.Println("  the attacker now has the complete zone contents, including xk77-secret-project.")

	// ---- Part 2: the same zone behind NSEC3 with 100 iterations.
	n3zone, err := buildZone(zone.DenialNSEC3, 100)
	if err != nil {
		return err
	}
	fmt.Println("\n== Same zone with NSEC3 (100 additional iterations, salt ABCD):")
	fmt.Println("  the chain only exposes hashed owners:")
	params := nsec3.Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 100, Salt: []byte{0xAB, 0xCD}}
	hashes := map[string]bool{}
	for _, rec := range n3zone.Chain().Records {
		label := nsec3.EncodeHash(rec.OwnerHash)
		hashes[label] = true
		fmt.Printf("  %s\n", label)
	}

	// ---- Part 3: offline dictionary attack (the RFC 9276 rationale).
	fmt.Println("\n== Offline dictionary attack against the harvested hashes:")
	apex := dnswire.MustParseName("victim.example")
	cracked := 0
	for _, word := range dictionary {
		h, err := nsec3.Hash(apex.MustChild(word), params)
		if err != nil {
			return err
		}
		if hashes[nsec3.EncodeHash(h)] {
			fmt.Printf("  cracked: %-12s (hash %s)\n", word, nsec3.EncodeHash(h))
			cracked++
		}
	}
	fmt.Printf("  %d/%d zone names recovered with a %d-word dictionary despite 100 iterations.\n",
		cracked, len(labels)+1, len(dictionary))
	fmt.Println("  Only the unguessable label survived — which is why RFC 9276 Item 2 says")
	fmt.Println("  extra iterations buy nothing and only burden validators (CVE-2023-50868).")
	return nil
}
