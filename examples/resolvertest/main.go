// Resolvertest is a miniature §5.2: stand up rfc9276-in-the-wild.com
// with its 49 crafted subdomains, run a handful of resolvers with
// different vendor policies against it, and print each one's probe
// transcript summary and RFC 9276 classification.
//
//	go run ./examples/resolvertest
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/compliance"
	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	h, err := core.BuildTestbedWorld(7)
	if err != nil {
		return err
	}
	fmt.Printf("testbed up: %d zones under %s (49 subdomains + it-2501-expired)\n\n",
		len(h.Zones), testbed.TestbedDomain)

	profiles := []respop.Profile{
		respop.BIND2021, respop.BINDPatched, respop.GooglePublicDNS,
		respop.Cloudflare, respop.Technitium, respop.StrictZero,
		respop.Legacy2018, respop.Item7Violator, respop.ThreePhase,
	}
	ctx := context.Background()
	for i, prof := range profiles {
		res := resolver.New(resolver.Config{
			Roots:       h.Roots,
			TrustAnchor: h.TrustAnchor,
			Exchanger:   h.Net,
			Policy:      prof.Policy,
			Now:         func() uint32 { return core.DefaultNow },
		})
		addr := netsim.Addr4(10, 53, 0, byte(i+1))
		h.Net.Register(addr, res)
		tr, err := testbed.ProbeResolver(ctx, h.Net, addr, fmt.Sprintf("demo-%d", i))
		if err != nil {
			return err
		}
		c := compliance.ClassifyResolver(tr)
		fmt.Printf("%-22s (%s)\n", prof.Policy.Name, prof.Vendor)
		valid, _ := tr.Find("valid")
		expired, _ := tr.Find("expired")
		it1, _ := tr.Find("it-1")
		it151, _ := tr.Find("it-151")
		it500, _ := tr.Find("it-500")
		bomb, _ := tr.Find("it-2501-expired")
		show := func(label string, o testbed.Observation) {
			ad := ""
			if o.AD {
				ad = "+AD"
			}
			ede := ""
			if len(o.EDE) > 0 {
				ede = fmt.Sprintf("  [%s]", o.EDE[0])
			}
			fmt.Printf("    %-16s %s%s%s\n", label, o.RCode, ad, ede)
		}
		show("valid", valid)
		show("expired", expired)
		show("it-1", it1)
		show("it-151", it151)
		show("it-500", it500)
		show("it-2501-expired", bomb)
		fmt.Printf("    classification: validator=%v Item6(limit=%d)=%v Item8(from=%d)=%v "+
			"Item7-violation=%v three-phase=%v EDE27=%v\n\n",
			c.IsValidator, c.InsecureLimit, c.ImplementsItem6,
			c.ServfailFrom, c.ImplementsItem8, c.Item7Violation, c.ThreePhase, c.EDE27)
	}

	// Forwarder detection via the server-side query log (§4.2).
	srcs := h.Log.SourcesFor(func(n dnswire.Name) bool {
		return n.IsSubdomainOf(dnswire.MustParseName(testbed.TestbedDomain))
	})
	fmt.Printf("server-side log saw %d distinct sources hit the testbed name servers\n", len(srcs))
	return nil
}
