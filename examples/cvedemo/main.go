// Cvedemo demonstrates CVE-2023-50868 end to end: a resolver validating
// NXDOMAIN proofs from zones with increasing NSEC3 iteration counts
// burns measurably more CPU per query — the resource-exhaustion vector
// that pushed RFC 9276's "zeros" guidance from hygiene to urgency
// (paper §1; Gruza et al. measured up to 72× resolver CPU).
//
// The demo builds the rfc9276 testbed, then times cold NXDOMAIN
// resolutions against it-0-equivalent (valid zone, wildcard miss path),
// it-25, it-150, it-500, and the it-2501-expired bomb, printing the
// per-query validation cost.
//
//	go run ./examples/cvedemo
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	h, err := core.BuildTestbedWorld(99)
	if err != nil {
		return err
	}
	// A pre-2021 validator: no iteration limit below the RFC 5155 caps
	// — the vulnerable configuration.
	res := resolver.New(resolver.Config{
		Roots:       h.Roots,
		TrustAnchor: h.TrustAnchor,
		Exchanger:   h.Net,
		Policy:      respop.Legacy2018.Policy,
		Now:         func() uint32 { return core.DefaultNow },
	})
	raddr := netsim.Addr4(10, 66, 0, 1)
	h.Net.Register(raddr, res)
	ctx := context.Background()

	// Warm the infrastructure (delegations, DNSKEYs) so the timing
	// isolates denial validation.
	warm := dnswire.NewQuery(1, dnswire.MustParseName("w.valid."+testbed.TestbedDomain), dnswire.TypeA, true)
	if _, err := h.Net.Exchange(ctx, raddr, warm); err != nil {
		return err
	}

	fmt.Println("per-query cost of validating NXDOMAIN proofs on an unlimited (pre-2021) validator:")
	fmt.Printf("  %-10s %14s %10s\n", "zone", "µs/query", "vs it-1")
	var base float64
	const samples = 40
	for _, label := range []string{"it-1", "it-10", "it-25", "it-150", "it-500"} {
		var sub testbed.Subdomain
		for _, s := range testbed.Subdomains() {
			if s.Label == label {
				sub = s
			}
		}
		start := time.Now()
		for i := 0; i < samples; i++ {
			q := dnswire.NewQuery(uint16(i), sub.QName(fmt.Sprintf("cve-%s-%d", label, i)), dnswire.TypeA, true)
			resp, err := h.Net.Exchange(ctx, raddr, q)
			if err != nil {
				return err
			}
			if resp.Header.RCode != dnswire.RCodeNXDomain {
				return fmt.Errorf("%s: unexpected %s", label, resp.Header.RCode)
			}
		}
		us := float64(time.Since(start).Microseconds()) / samples
		if base == 0 {
			base = us
		}
		fmt.Printf("  %-10s %14.1f %9.1fx\n", label, us, us/base)
	}

	fmt.Println("\nthe same probes against a CVE-patched validator (insecure above 50):")
	patched := resolver.New(resolver.Config{
		Roots:       h.Roots,
		TrustAnchor: h.TrustAnchor,
		Exchanger:   h.Net,
		Policy:      respop.BINDPatched.Policy,
		Now:         func() uint32 { return core.DefaultNow },
	})
	paddr := netsim.Addr4(10, 66, 0, 2)
	h.Net.Register(paddr, patched)
	if _, err := h.Net.Exchange(ctx, paddr, warm); err != nil {
		return err
	}
	fmt.Printf("  %-10s %14s %10s\n", "zone", "µs/query", "vs it-1")
	base = 0
	for _, label := range []string{"it-1", "it-150", "it-500"} {
		var sub testbed.Subdomain
		for _, s := range testbed.Subdomains() {
			if s.Label == label {
				sub = s
			}
		}
		start := time.Now()
		for i := 0; i < samples; i++ {
			q := dnswire.NewQuery(uint16(i), sub.QName(fmt.Sprintf("pat-%s-%d", label, i)), dnswire.TypeA, true)
			if _, err := h.Net.Exchange(ctx, paddr, q); err != nil {
				return err
			}
		}
		us := float64(time.Since(start).Microseconds()) / samples
		if base == 0 {
			base = us
		}
		fmt.Printf("  %-10s %14.1f %9.1fx\n", label, us, us/base)
	}
	fmt.Println("\nthe patch caps the resolver's work: above its limit it answers insecurely without")
	fmt.Println("validating the expensive proof — RFC 9276 Items 6/8 as DoS mitigation. The residual")
	fmt.Println("growth on the patched path is the *authoritative server's* own per-query hashing,")
	fmt.Println("which is why Items 1–3 target zone owners too. These end-to-end numbers include")
	fmt.Println("signature verification and transport; run")
	fmt.Println("  go test -bench=BenchmarkCVE202350868ProofCost")
	fmt.Println("for the isolated denial-validation cost (~45x from it-1 to it-500).")
	return nil
}
